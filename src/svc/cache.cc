#include "svc/cache.hh"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "snap/snapshot.hh"

namespace fs = std::filesystem;

namespace upc780::svc
{

namespace
{

constexpr const char *PayloadSection = "reply";

bool
looksLikeKey(const std::string &name)
{
    if (name.size() != 64)
        return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    });
}

} // namespace

ResultCache::ResultCache(std::string dir, uint64_t budgetBytes)
    : dir_(std::move(dir)), budget_(budgetBytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        sim_throw(ConfigError, "result cache: cannot create '%s': %s",
                  dir_.c_str(), ec.message().c_str());
    indexExisting();
}

std::string
ResultCache::pathFor(const std::string &key) const
{
    return dir_ + "/" + key.substr(0, 2) + "/" + key;
}

void
ResultCache::indexExisting()
{
    // Oldest-first by mtime so the rebuilt LRU list approximates the
    // pre-restart recency order (front = most recent).
    struct Found
    {
        std::string key;
        uint64_t size;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    std::error_code ec;
    for (const auto &sub : fs::directory_iterator(dir_, ec)) {
        if (!sub.is_directory())
            continue;
        for (const auto &e : fs::directory_iterator(sub.path(), ec)) {
            const std::string name = e.path().filename().string();
            if (!e.is_regular_file() || !looksLikeKey(name))
                continue;
            std::error_code fec;
            const uint64_t size = e.file_size(fec);
            const auto mtime = e.last_write_time(fec);
            if (!fec)
                found.push_back({name, size, mtime});
        }
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime;
              });
    for (const Found &f : found) {
        lru_.push_front({f.key, f.size});
        index_[f.key] = lru_.begin();
        stats_.bytes += f.size;
    }
}

void
ResultCache::touchLocked(std::list<Entry>::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
    // Persist recency for post-restart indexing; best effort.
    std::error_code ec;
    fs::last_write_time(pathFor(it->key),
                        fs::file_time_type::clock::now(), ec);
}

void
ResultCache::dropLocked(std::list<Entry>::iterator it, bool corrupted)
{
    std::error_code ec;
    fs::remove(pathFor(it->key), ec);
    stats_.bytes -= std::min(stats_.bytes, it->size);
    if (corrupted)
        ++stats_.corruptDropped;
    else
        ++stats_.evictions;
    index_.erase(it->key);
    lru_.erase(it);
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    try {
        const auto snap = snap::SnapshotReader::fromFile(pathFor(key));
        if (snap.meta().kind != snap::SnapshotKind::CacheEntry)
            sim_throw(SnapshotError, "cache entry '%s' has wrong "
                      "snapshot kind", key.c_str());
        ByteReader payload = snap.open(PayloadSection);
        std::string value = payload.str(1ull << 32);
        payload.expectEnd(PayloadSection);
        touchLocked(it->second);
        ++stats_.hits;
        return value;
    } catch (const SimError &e) {
        // Torn, truncated, bit-flipped, or foreign: heal by dropping
        // the entry and recomputing upstream.
        warn("result cache: dropping unreadable entry %s: %s",
             key.c_str(), e.what());
        dropLocked(it->second, true);
        ++stats_.misses;
        return std::nullopt;
    }
}

void
ResultCache::put(const std::string &key, const std::string &value)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Same key means same bytes (content addressing); just
        // refresh recency.
        touchLocked(it->second);
        return;
    }

    snap::SnapshotMeta meta;
    meta.kind = snap::SnapshotKind::CacheEntry;
    meta.workload = key.substr(0, 16); // advisory only
    meta.configHash = snap::fnv1a(
        reinterpret_cast<const uint8_t *>(key.data()), key.size());
    snap::SnapshotWriter w(meta);
    ByteWriter payload;
    payload.str(value);
    w.add(PayloadSection, std::move(payload));
    w.writeFile(pathFor(key));

    std::error_code ec;
    const uint64_t size = fs::file_size(pathFor(key), ec);
    lru_.push_front({key, ec ? value.size() : size});
    index_[key] = lru_.begin();
    stats_.bytes += lru_.front().size;
    ++stats_.puts;
    evictLocked(key);
}

void
ResultCache::evictLocked(const std::string &keep)
{
    if (!budget_)
        return;
    while (stats_.bytes > budget_ && !lru_.empty()) {
        auto victim = std::prev(lru_.end());
        if (victim->key == keep) {
            // The newest entry alone exceeds the budget: keep it (a
            // cache that refuses its only entry would never hit).
            if (lru_.size() == 1)
                return;
            victim = std::prev(victim);
        }
        dropLocked(victim, false);
    }
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace upc780::svc
