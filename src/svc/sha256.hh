/**
 * @file
 * SHA-256 (FIPS 180-4), self-contained. The experiment daemon's result
 * cache is content-addressed: the key of an entry is the SHA-256 of
 * the canonical job preimage (see svc/cachekey.hh), so two requests
 * that would simulate the same machine collapse to the same entry.
 * A cryptographic digest (rather than the snapshot layer's FNV-1a
 * fingerprints) keeps accidental collisions out of the picture even
 * across millions of distinct configurations; nothing here defends
 * against an adversary with write access to the cache directory.
 */

#ifndef UPC780_SVC_SHA256_HH
#define UPC780_SVC_SHA256_HH

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace upc780::svc
{

/** Streaming SHA-256: update() any number of times, then digest(). */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, size_t len);

    void
    update(const std::vector<uint8_t> &v)
    {
        update(v.data(), v.size());
    }

    void
    update(const std::string &s)
    {
        update(s.data(), s.size());
    }

    /** Finalize and return the 32-byte digest (object left finalized;
     *  reset() before reuse). */
    std::array<uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hex();

  private:
    void compress(const uint8_t block[64]);

    std::array<uint32_t, 8> h_;
    uint8_t buf_[64];
    size_t bufLen_ = 0;
    uint64_t total_ = 0;
};

/** One-shot convenience: SHA-256 of @p data as lowercase hex. */
std::string sha256Hex(const void *data, size_t len);

inline std::string
sha256Hex(const std::vector<uint8_t> &v)
{
    return sha256Hex(v.data(), v.size());
}

inline std::string
sha256Hex(const std::string &s)
{
    return sha256Hex(s.data(), s.size());
}

} // namespace upc780::svc

#endif // UPC780_SVC_SHA256_HH
