/**
 * @file
 * Injectable wall clock for the daemon's request-timeout policy.
 *
 * Everything the daemon *computes* is deterministic (the determinism
 * contract, DESIGN.md §10); wall-clock time only decides whether a
 * queued request has waited too long to still be worth running. That
 * decision point takes a Clock so the integration tests can drive it
 * with a ManualClock — no sleeps, no flaky time margins: the test
 * advances virtual time past the deadline and the very next admission
 * check observes the expiry.
 */

#ifndef UPC780_SVC_CLOCK_HH
#define UPC780_SVC_CLOCK_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace upc780::svc
{

/** Monotonic millisecond clock. */
class Clock
{
  public:
    virtual ~Clock() = default;
    virtual uint64_t nowMs() const = 0;
};

/** The real steady clock. */
class SystemClock : public Clock
{
  public:
    uint64_t
    nowMs() const override
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
};

/** Test clock: time moves only when the test says so. */
class ManualClock : public Clock
{
  public:
    uint64_t
    nowMs() const override
    {
        return now_.load(std::memory_order_relaxed);
    }

    void
    advanceMs(uint64_t ms)
    {
        now_.fetch_add(ms, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> now_{0};
};

} // namespace upc780::svc

#endif // UPC780_SVC_CLOCK_HH
