/**
 * @file
 * Content-addressed cache keys for experiment results.
 *
 * The determinism contract (DESIGN.md §10) makes a reply a pure
 * function of (machine config, microcode image, workloads, seed set,
 * budgets): run it twice, get the same bytes. The key of a cache
 * entry is therefore the SHA-256 of a *canonical preimage* of exactly
 * those inputs:
 *
 *     "upc780.job.v1"                 format tag (bump on any change)
 *     canonical MachineConfig bytes   every documented field, fixed
 *                                     order, fixed widths
 *     u64 image content hash          ucode::imageContentHash of the
 *                                     image the machine will run
 *     per workload: id + full profile parameters + effective seed
 *     u64 derived seed per (replication, workload) — the seed set
 *     budgets and reply-shaping flags (instructions, warmup,
 *     exclude_idle, replications, report)
 *
 * Deliberately absent: tenant (fairness identity, not physics — two
 * tenants share one entry), cache_only (how to answer, not what),
 * dispatch mode (both dispatchers are proven byte-identical by
 * `ctest -L dispatch`), and every daemon-side knob (spool dir,
 * checkpoint cadence, chaos crashes, timeouts) — a job that crashed
 * and recovered caches under the same key as one that ran clean.
 *
 * Canonical means canonical: the key is a function of the *parsed*
 * JobSpec, so JSON member order, whitespace, and spelled-out defaults
 * cannot perturb it. The cachekey-labeled property tests pin both
 * directions: equal specs hash equal, and every documented field
 * perturbation changes the key.
 */

#ifndef UPC780_SVC_CACHEKEY_HH
#define UPC780_SVC_CACHEKEY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "svc/job.hh"

namespace upc780::svc
{

/** Canonical byte serialization of a machine configuration. */
std::vector<uint8_t> canonicalMachineBytes(const cpu::MachineConfig &m);

/** The full canonical preimage of a job (see file comment). */
std::vector<uint8_t> canonicalJobBytes(const JobSpec &spec);

/** SHA-256 of the canonical preimage, as 64 lowercase hex chars. */
std::string cacheKey(const JobSpec &spec);

} // namespace upc780::svc

#endif // UPC780_SVC_CACHEKEY_HH
