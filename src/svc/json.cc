#include "svc/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace upc780::svc::json
{

Value::Value(uint64_t u)
{
    if (u <= uint64_t{INT64_MAX}) {
        type_ = Type::Int;
        int_ = static_cast<int64_t>(u);
    } else {
        type_ = Type::Double;
        dbl_ = static_cast<double>(u);
    }
}

Value::Value(Array a)
    : type_(Type::ArrayT), arr_(std::make_unique<Array>(std::move(a)))
{}

Value::Value(Members m)
    : type_(Type::Object), obj_(std::make_unique<Members>(std::move(m)))
{}

Value &
Value::operator=(const Value &o)
{
    if (this == &o)
        return *this;
    type_ = o.type_;
    bool_ = o.bool_;
    int_ = o.int_;
    dbl_ = o.dbl_;
    str_ = o.str_;
    arr_ = o.arr_ ? std::make_unique<Array>(*o.arr_) : nullptr;
    obj_ = o.obj_ ? std::make_unique<Members>(*o.obj_) : nullptr;
    return *this;
}

namespace
{

const char *
typeName(Type t)
{
    switch (t) {
    case Type::Null: return "null";
    case Type::Bool: return "bool";
    case Type::Int: return "int";
    case Type::Double: return "double";
    case Type::String: return "string";
    case Type::ArrayT: return "array";
    case Type::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
typeError(const char *want, Type got)
{
    sim_throw(ConfigError, "json: expected %s, got %s", want,
              typeName(got));
}

} // namespace

bool
Value::asBool() const
{
    if (!isBool())
        typeError("bool", type_);
    return bool_;
}

int64_t
Value::asInt() const
{
    if (!isInt())
        typeError("integer", type_);
    return int_;
}

uint64_t
Value::asUint() const
{
    if (!isInt() || int_ < 0)
        typeError("unsigned integer", type_);
    return static_cast<uint64_t>(int_);
}

double
Value::asDouble() const
{
    if (isInt())
        return static_cast<double>(int_);
    if (type_ != Type::Double)
        typeError("number", type_);
    return dbl_;
}

const std::string &
Value::asString() const
{
    if (!isString())
        typeError("string", type_);
    return str_;
}

const Array &
Value::asArray() const
{
    if (!isArray())
        typeError("array", type_);
    return *arr_;
}

const Members &
Value::asObject() const
{
    if (!isObject())
        typeError("object", type_);
    return *obj_;
}

const Value *
Value::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : *obj_)
        if (k == key)
            return &v;
    return nullptr;
}

void
Value::set(const std::string &key, Value v)
{
    if (!isObject()) {
        type_ = Type::Object;
        obj_ = std::make_unique<Members>();
    }
    obj_->emplace_back(key, std::move(v));
}

void
Value::push(Value v)
{
    if (!isArray()) {
        type_ = Type::ArrayT;
        arr_ = std::make_unique<Array>();
    }
    arr_->push_back(std::move(v));
}

Value
object()
{
    return Value(Members{});
}

Value
array()
{
    return Value(Array{});
}

std::string
quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Value::dumpTo(std::string &out) const
{
    char buf[40];
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
    case Type::Double:
        if (std::isfinite(dbl_)) {
            std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
            out += buf;
        } else {
            out += "null"; // JSON has no Inf/NaN
        }
        break;
    case Type::String:
        out += quote(str_);
        break;
    case Type::ArrayT: {
        out.push_back('[');
        bool first = true;
        for (const Value &v : *arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            v.dumpTo(out);
        }
        out.push_back(']');
        break;
    }
    case Type::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[k, v] : *obj_) {
            if (!first)
                out.push_back(',');
            first = false;
            out += quote(k);
            out.push_back(':');
            v.dumpTo(out);
        }
        out.push_back('}');
        break;
    }
    }
}

std::string
Value::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

// ----- parser ----------------------------------------------------------

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, size_t maxDepth)
        : s_(text), maxDepth_(maxDepth)
    {}

    Value
    parseDocument()
    {
        Value v = parseValue(0);
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what) const
    {
        sim_throw(ConfigError, "json parse error at offset %zu: %s",
                  pos_, what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        const size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue(size_t depth)
    {
        if (depth > maxDepth_)
            fail("nesting too deep");
        skipWs();
        const char c = peek();
        switch (c) {
        case '{': return parseObject(depth);
        case '[': return parseArray(depth);
        case '"': return Value(parseString());
        case 't':
            if (consume("true"))
                return Value(true);
            fail("bad literal");
        case 'f':
            if (consume("false"))
                return Value(false);
            fail("bad literal");
        case 'n':
            if (consume("null"))
                return Value(nullptr);
            fail("bad literal");
        default:
            return parseNumber();
        }
    }

    Value
    parseObject(size_t depth)
    {
        expect('{');
        Members m;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(m));
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected member name");
            std::string key = parseString();
            skipWs();
            expect(':');
            m.emplace_back(std::move(key), parseValue(depth + 1));
            skipWs();
            const char e = peek();
            if (e == ',') {
                ++pos_;
                continue;
            }
            if (e == '}') {
                ++pos_;
                return Value(std::move(m));
            }
            fail("expected ',' or '}'");
        }
    }

    Value
    parseArray(size_t depth)
    {
        expect('[');
        Array a;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(a));
        }
        for (;;) {
            a.push_back(parseValue(depth + 1));
            skipWs();
            const char e = peek();
            if (e == ',') {
                ++pos_;
                continue;
            }
            if (e == ']') {
                ++pos_;
                return Value(std::move(a));
            }
            fail("expected ',' or ']'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(s_[pos_++]);
            if (c == '"')
                return out;
            if (c < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                uint32_t cp = parseHex4();
                // Surrogate pair: accept and combine; a lone
                // surrogate is an error.
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                        s_[pos_ + 1] != 'u')
                        fail("unpaired surrogate");
                    pos_ += 2;
                    const uint32_t lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("bad escape character");
            }
        }
    }

    uint32_t
    parseHex4()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size())
                fail("truncated \\u escape");
            const char c = s_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
    }

    Value
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (pos_ >= s_.size() || !isDigit(s_[pos_]))
            fail("bad number");
        while (pos_ < s_.size() && isDigit(s_[pos_]))
            ++pos_;
        bool integral = true;
        if (pos_ < s_.size() && s_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= s_.size() || !isDigit(s_[pos_]))
                fail("bad fraction");
            while (pos_ < s_.size() && isDigit(s_[pos_]))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (pos_ >= s_.size() || !isDigit(s_[pos_]))
                fail("bad exponent");
            while (pos_ < s_.size() && isDigit(s_[pos_]))
                ++pos_;
        }
        const std::string tok = s_.substr(start, pos_ - start);
        if (integral) {
            errno = 0;
            char *end = nullptr;
            const long long v = std::strtoll(tok.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Value(int64_t{v});
            // Out of int64 range: fall through to double.
        }
        errno = 0;
        const double d = std::strtod(tok.c_str(), nullptr);
        return Value(d);
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    const std::string &s_;
    size_t pos_ = 0;
    size_t maxDepth_;
};

} // namespace

Value
parse(const std::string &text, size_t maxDepth, size_t maxBytes)
{
    if (text.size() > maxBytes)
        sim_throw(ConfigError, "json document too large: %zu bytes "
                  "(cap %zu)", text.size(), maxBytes);
    return Parser(text, maxDepth).parseDocument();
}

} // namespace upc780::svc::json
