#include "svc/cachekey.hh"

#include "common/random.hh"
#include "common/serial.hh"
#include "svc/sha256.hh"
#include "ucode/controlstore.hh"

namespace upc780::svc
{

std::vector<uint8_t>
canonicalMachineBytes(const cpu::MachineConfig &m)
{
    ByteWriter w;
    w.u32(m.mem.cache.sizeBytes);
    w.u32(m.mem.cache.ways);
    w.u32(m.mem.cache.blockBytes);
    w.b(m.mem.cache.enabled);
    w.u32(m.mem.sbi.readLatency);
    w.u32(m.mem.sbi.writeLatency);
    w.u32(m.mem.writeBufferDepth);
    w.u32(m.mem.memSize);
    w.u32(m.tb.entriesPerHalf);
    w.b(m.tb.enabled);
    w.b(m.fpa);
    w.b(m.rmodeDecode);
    // dispatch is excluded: both interpreters compute the identical
    // trajectory (ctest -L dispatch), so it cannot shape a result.
    // The image is covered separately, by content hash (see
    // canonicalJobBytes) — a pointer has no canonical bytes.
    return w.take();
}

namespace
{

void
writeProfile(ByteWriter &w, const wkl::WorkloadProfile &p)
{
    w.str(p.name);
    w.f64(p.weights.intLoop);
    w.f64(p.weights.dataMove);
    w.f64(p.weights.branchy);
    w.f64(p.weights.callTree);
    w.f64(p.weights.subrCalls);
    w.f64(p.weights.stringOps);
    w.f64(p.weights.floatKernel);
    w.f64(p.weights.intMulDiv);
    w.f64(p.weights.fieldOps);
    w.f64(p.weights.bitBranches);
    w.f64(p.weights.caseDispatch);
    w.f64(p.weights.decimalOps);
    w.f64(p.weights.queueOps);
    w.f64(p.weights.sysWrite);
    w.u32(p.users);
    w.u32(p.sessionRepeat);
    w.u32(p.dataPages);
    w.u32(p.codeBlocks);
    w.f64(p.thinkMeanCycles);
    w.f64(p.loopIterMean);
    w.u64(p.seed);
}

} // namespace

std::vector<uint8_t>
canonicalJobBytes(const JobSpec &spec)
{
    ByteWriter w;
    w.str("upc780.job.v1");
    w.blob(canonicalMachineBytes(spec.machine));

    // The image the machine will actually run: an explicit override,
    // else the fpa-selected shipped image.
    const ucode::MicrocodeImage &img =
        spec.machine.image ? *spec.machine.image
        : spec.machine.fpa ? ucode::microcodeImage()
                           : ucode::microcodeImageNoFpa();
    w.u64(ucode::imageContentHash(img));

    // Workloads with their full parameters and effective base seeds.
    const auto profiles = profilesFor(spec);
    w.u32(static_cast<uint32_t>(spec.workloads.size()));
    for (size_t i = 0; i < spec.workloads.size(); ++i) {
        w.str(spec.workloads[i]);
        writeProfile(w, profiles[i]);
    }

    // The explicit seed set: one derived seed per (replication,
    // workload), exactly the seeds runReplicated hands each task.
    w.u32(spec.replications);
    for (uint32_t r = 0; r < spec.replications; ++r)
        for (const auto &p : profiles)
            w.u64(deriveSeed(p.seed, r));

    w.u64(spec.instructions);
    w.u64(spec.warmup);
    w.b(spec.excludeIdle);
    w.b(spec.report);
    return w.take();
}

std::string
cacheKey(const JobSpec &spec)
{
    return sha256Hex(canonicalJobBytes(spec));
}

} // namespace upc780::svc
