#include "mmu/pagetable.hh"

#include "common/logging.hh"
#include "mem/memory.hh"

namespace upc780::mmu
{

std::optional<uint32_t>
pteAddress(const MapRegisters &map_regs, VAddr va, bool &is_physical)
{
    uint32_t vpn = vpnOf(va);
    switch (spaceOf(va)) {
      case Space::S0:
        is_physical = true;
        if (vpn >= map_regs.slr)
            return std::nullopt;
        return map_regs.sbr + 4 * vpn;
      case Space::P0:
        is_physical = false;
        if (vpn >= map_regs.p0lr)
            return std::nullopt;
        return map_regs.p0br + 4 * vpn;
      case Space::P1:
        is_physical = false;
        // P1 grows downward: valid VPNs are [p1lr, 2^21); the table
        // is indexed so that p1br points at the (virtual) PTE for
        // VPN 0. We model the common VMS layout where p1lr is the
        // lowest mapped VPN.
        if (vpn < map_regs.p1lr)
            return std::nullopt;
        return map_regs.p1br + 4 * vpn;
      default:
        is_physical = true;
        return std::nullopt;
    }
}

std::optional<PAddr>
walk(const mem::PhysicalMemory &memory, const MapRegisters &map_regs,
     VAddr va)
{
    bool is_physical = false;
    auto pte_addr = pteAddress(map_regs, va, is_physical);
    if (!pte_addr)
        return std::nullopt;

    PAddr pte_pa;
    if (is_physical) {
        pte_pa = *pte_addr;
    } else {
        // The PTE itself lives in system virtual space: translate it
        // through the system page table.
        VAddr pte_va = *pte_addr;
        if (spaceOf(pte_va) != Space::S0)
            return std::nullopt;
        uint32_t svpn = vpnOf(pte_va);
        if (svpn >= map_regs.slr)
            return std::nullopt;
        uint32_t spte = static_cast<uint32_t>(
            memory.read(map_regs.sbr + 4 * svpn, 4));
        if (!pte::valid(spte))
            return std::nullopt;
        pte_pa = (pte::pfn(spte) << PageShift) | (pte_va & (PageBytes - 1));
    }

    uint32_t entry = static_cast<uint32_t>(memory.read(pte_pa, 4));
    if (!pte::valid(entry))
        return std::nullopt;
    return (pte::pfn(entry) << PageShift) | (va & (PageBytes - 1));
}

PageTableBuilder::PageTableBuilder(mem::PhysicalMemory &memory,
                                   PAddr table_region_base)
    : memory_(memory), cursor_(table_region_base)
{
}

PAddr
PageTableBuilder::allocTable(uint32_t npte)
{
    PAddr base = cursor_;
    uint32_t bytes = 4 * npte;
    memory_.clear(base, bytes);
    cursor_ += bytes;
    // Keep tables longword aligned (they already are) and leave a
    // small guard gap to make table overruns visible in tests.
    cursor_ = (cursor_ + 63u) & ~63u;
    return base;
}

void
PageTableBuilder::setPte(PAddr table_pa, uint32_t vpn, uint32_t pfn_v)
{
    memory_.write(table_pa + 4 * vpn, 4, pte::make(pfn_v));
}

void
PageTableBuilder::mapRange(PAddr table_pa, uint32_t first_vpn,
                           uint32_t first_pfn, uint32_t npages)
{
    for (uint32_t i = 0; i < npages; ++i)
        setPte(table_pa, first_vpn + i, first_pfn + i);
}

} // namespace upc780::mmu
