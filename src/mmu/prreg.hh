/**
 * @file
 * VAX internal processor register numbers (MTPR/MFPR operand codes)
 * used by the VMS-lite substrate.
 */

#ifndef UPC780_MMU_PRREG_HH
#define UPC780_MMU_PRREG_HH

#include <cstdint>

namespace upc780::mmu::pr
{

constexpr uint32_t KSP = 0;      //!< kernel stack pointer
constexpr uint32_t ESP = 1;      //!< executive stack pointer
constexpr uint32_t SSP = 2;      //!< supervisor stack pointer
constexpr uint32_t USP = 3;      //!< user stack pointer
constexpr uint32_t ISP = 4;      //!< interrupt stack pointer
constexpr uint32_t P0BR = 8;     //!< P0 base register
constexpr uint32_t P0LR = 9;     //!< P0 length register
constexpr uint32_t P1BR = 10;    //!< P1 base register
constexpr uint32_t P1LR = 11;    //!< P1 length register
constexpr uint32_t SBR = 12;     //!< system base register
constexpr uint32_t SLR = 13;     //!< system length register
constexpr uint32_t PCBB = 16;    //!< process control block base
constexpr uint32_t SCBB = 17;    //!< system control block base
constexpr uint32_t IPL = 18;     //!< interrupt priority level
constexpr uint32_t ASTLVL = 19;  //!< AST level
constexpr uint32_t SIRR = 20;    //!< software interrupt request
constexpr uint32_t SISR = 21;    //!< software interrupt summary
constexpr uint32_t ICCS = 24;    //!< interval clock control
constexpr uint32_t TODR = 27;    //!< time of day
constexpr uint32_t MAPEN = 56;   //!< memory management enable
constexpr uint32_t TBIA = 57;    //!< TB invalidate all
constexpr uint32_t TBIS = 58;    //!< TB invalidate single

constexpr uint32_t NumRegs = 64;

} // namespace upc780::mmu::pr

#endif // UPC780_MMU_PRREG_HH
