/**
 * @file
 * VAX virtual memory structures: address-space regions, page table
 * entries, and a software page-table builder/walker. The walker is the
 * architectural reference model; at run time the *microcode* TB-miss
 * routine performs the walk, charging cycles for each step.
 */

#ifndef UPC780_MMU_PAGETABLE_HH
#define UPC780_MMU_PAGETABLE_HH

#include <cstdint>
#include <optional>

#include "arch/types.hh"

namespace upc780::mem
{
class PhysicalMemory;
} // namespace upc780::mem

namespace upc780::mmu
{

using arch::PAddr;
using arch::VAddr;

/** VAX page size: 512 bytes. */
constexpr uint32_t PageBytes = 512;
constexpr uint32_t PageShift = 9;

/** Virtual address space regions. */
enum class Space : uint8_t
{
    P0,  //!< program region, VA 0x00000000 - 0x3FFFFFFF
    P1,  //!< control (stack) region, VA 0x40000000 - 0x7FFFFFFF
    S0,  //!< system region, VA 0x80000000 - 0xBFFFFFFF
    Reserved,
};

/** Classify a virtual address. */
constexpr Space
spaceOf(VAddr va)
{
    switch (va >> 30) {
      case 0:
        return Space::P0;
      case 1:
        return Space::P1;
      case 2:
        return Space::S0;
      default:
        return Space::Reserved;
    }
}

/** Virtual page number within its region. */
constexpr uint32_t
vpnOf(VAddr va)
{
    return (va & 0x3FFFFFFF) >> PageShift;
}

/** Page table entry: bit 31 valid, bits 20:0 page frame number. */
namespace pte
{
constexpr uint32_t Valid = 1u << 31;
constexpr uint32_t PfnMask = 0x001FFFFF;

constexpr uint32_t
make(uint32_t pfn)
{
    return Valid | (pfn & PfnMask);
}

constexpr bool
valid(uint32_t e)
{
    return e & Valid;
}

constexpr uint32_t
pfn(uint32_t e)
{
    return e & PfnMask;
}
} // namespace pte

/**
 * The per-context translation base/length registers the walker needs.
 * On the VAX, SBR is a physical address while P0BR/P1BR are *system
 * virtual* addresses, so a process-space PTE fetch may itself require
 * a system-space translation (the "double miss").
 */
struct MapRegisters
{
    PAddr sbr = 0;    //!< system page table base (physical)
    uint32_t slr = 0; //!< system page table length (PTE count)
    VAddr p0br = 0;   //!< P0 page table base (system virtual)
    uint32_t p0lr = 0;
    VAddr p1br = 0;   //!< P1 page table base (system virtual)
    uint32_t p1lr = 0;
};

/**
 * Software reference walker: translate @p va using the page tables in
 * @p memory. Returns nullopt for invalid/unmapped addresses. Performs
 * the nested system translation for P0/P1 PTE fetches exactly as the
 * microcode does.
 */
std::optional<PAddr> walk(const mem::PhysicalMemory &memory,
                          const MapRegisters &map_regs, VAddr va);

/**
 * Compute the address of the PTE that maps @p va.
 *
 * @param is_physical out: true if the returned address is physical
 *        (system space PTE); false if it is a system virtual address
 *        (process space PTE) that itself needs translation.
 * @retval PTE address, or nullopt if the VPN exceeds the region length.
 */
std::optional<uint32_t> pteAddress(const MapRegisters &map_regs, VAddr va,
                                   bool &is_physical);

/**
 * Convenience builder that lays out page tables in physical memory
 * and assembles identity-style mappings for workload construction.
 */
class PageTableBuilder
{
  public:
    /**
     * @param memory backing store
     * @param table_region_base physical byte where page tables are
     *        allocated from
     */
    PageTableBuilder(mem::PhysicalMemory &memory, PAddr table_region_base);

    /** Allocate a page table of @p npte entries; returns its PA. */
    PAddr allocTable(uint32_t npte);

    /** Set one PTE in a table at physical @p table_pa. */
    void setPte(PAddr table_pa, uint32_t vpn, uint32_t pfn);

    /**
     * Map @p npages pages starting at (space-relative) @p first_vpn
     * to consecutive frames starting at @p first_pfn.
     */
    void mapRange(PAddr table_pa, uint32_t first_vpn, uint32_t first_pfn,
                  uint32_t npages);

    /** Next free physical byte in the table region. */
    PAddr cursor() const { return cursor_; }

  private:
    mem::PhysicalMemory &memory_;
    PAddr cursor_;
};

} // namespace upc780::mmu

#endif // UPC780_MMU_PAGETABLE_HH
