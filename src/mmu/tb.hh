/**
 * @file
 * The VAX-11/780 translation buffer: 128 entries in two 64-entry
 * direct-mapped halves, one dedicated to system space and one to
 * process space. The process half is flushed on context switch
 * (LDPCTX); this is why the paper's context-switch headway matters to
 * TB simulations (paper §3.4, and Clark & Emer's TB study [3]).
 *
 * The TB is *hardware* for lookups but is filled by a *microcode*
 * miss routine, which is exactly why the paper can measure TB misses
 * with the UPC technique (paper §4.2).
 */

#ifndef UPC780_MMU_TB_HH
#define UPC780_MMU_TB_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"
#include "common/stats.hh"
#include "mmu/pagetable.hh"

namespace upc780::fault
{
class FaultInjector;
}

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mmu
{

/** TB geometry; defaults model the 780. */
struct TbConfig
{
    uint32_t entriesPerHalf = 64;
    bool enabled = true;  //!< ablation: force every lookup to miss

    bool operator==(const TbConfig &) const = default;
};

/** TB hardware counters plus miss-routine bookkeeping. */
struct TbStats
{
    upc780::Counter dLookups;
    upc780::Counter dMisses;
    upc780::Counter iLookups;
    upc780::Counter iMisses;
    upc780::Counter fills;
    upc780::Counter processFlushes;
    upc780::Counter allFlushes;
    upc780::Counter parityInvalidates;  //!< injected parity errors
};

/** The translation buffer proper. */
class TranslationBuffer
{
  public:
    explicit TranslationBuffer(const TbConfig &config = TbConfig{});

    /**
     * Look up @p va. On a hit, produce the physical address.
     *
     * @param istream true for I-Fetch references (separate counters)
     * @retval true on hit
     */
    bool lookup(VAddr va, bool istream, PAddr &pa);

    /** Probe without counting (tests, walker cross-checks). */
    bool probe(VAddr va) const;

    /** Insert a translation (called by the miss microroutine). */
    void fill(VAddr va, uint32_t pfn);

    /** Invalidate process-space entries (context switch / TBIA-proc). */
    void flushProcess();

    /** Invalidate everything (MTPR TBIA). */
    void flushAll();

    /** Invalidate a single page (MTPR TBIS). */
    void invalidateSingle(VAddr va);

    /**
     * Attach a fault injector: valid entries may then suffer parity
     * errors on lookup, which invalidate the entry and force the miss
     * microroutine to refill it (the 780's TB-parity recovery path).
     * Null disables injection.
     */
    void setFaultInjector(fault::FaultInjector *inj) { fault_ = inj; }

    const TbStats &stats() const { return stats_; }
    const TbConfig &config() const { return config_; }

    /** Checkpoint entries + counters. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t tag = 0;  //!< VPN bits above the index
        uint32_t pfn = 0;
    };

    /** Map a VA to (half, set, tag). */
    void locate(VAddr va, uint32_t &half, uint32_t &set,
                uint32_t &tag) const;

    TbConfig config_;
    std::vector<Entry> entries_;  //!< [half * entriesPerHalf + set]
    TbStats stats_;
    fault::FaultInjector *fault_ = nullptr;
};

} // namespace upc780::mmu

#endif // UPC780_MMU_TB_HH
