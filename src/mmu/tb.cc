#include "mmu/tb.hh"

#include "common/bitfield.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "fault/fault.hh"
#include "obs/counters.hh"

namespace upc780::mmu
{

TranslationBuffer::TranslationBuffer(const TbConfig &config)
    : config_(config)
{
    if (!isPow2(config_.entriesPerHalf))
        sim_throw(ConfigError, "TB half size must be a power of two");
    entries_.resize(2u * config_.entriesPerHalf);
}

void
TranslationBuffer::locate(VAddr va, uint32_t &half, uint32_t &set,
                          uint32_t &tag) const
{
    // Half 0 holds process space (P0/P1), half 1 holds system space.
    half = (spaceOf(va) == Space::S0) ? 1 : 0;
    // Index by low VPN bits; the tag is the remaining VA page bits
    // including the region bits so P0 and P1 pages do not alias.
    uint32_t page = va >> PageShift;
    set = page & (config_.entriesPerHalf - 1);
    tag = page >> log2i(config_.entriesPerHalf);
}

bool
TranslationBuffer::lookup(VAddr va, bool istream, PAddr &pa)
{
    if (istream)
        ++stats_.iLookups;
    else
        ++stats_.dLookups;

    uint32_t half, set, tag;
    locate(va, half, set, tag);
    Entry &e = entries_[half * config_.entriesPerHalf + set];
    if (config_.enabled && e.valid && e.tag == tag) {
        if (fault_ && fault_->onTbLookup()) {
            // Parity error on the matching entry: discard it and take
            // the miss path, so the microcode refill provides the
            // realistic recovery timing.
            e.valid = false;
            ++stats_.parityInvalidates;
        } else {
            pa = (e.pfn << PageShift) | (va & (PageBytes - 1));
            obs::count(istream ? obs::Ev::TbIHits : obs::Ev::TbDHits);
            return true;
        }
    }

    if (istream)
        ++stats_.iMisses;
    else
        ++stats_.dMisses;
    obs::count(istream ? obs::Ev::TbIMisses : obs::Ev::TbDMisses);
    return false;
}

bool
TranslationBuffer::probe(VAddr va) const
{
    if (!config_.enabled)
        return false;
    uint32_t half, set, tag;
    locate(va, half, set, tag);
    const Entry &e = entries_[half * config_.entriesPerHalf + set];
    return e.valid && e.tag == tag;
}

void
TranslationBuffer::fill(VAddr va, uint32_t pfn)
{
    uint32_t half, set, tag;
    locate(va, half, set, tag);
    Entry &e = entries_[half * config_.entriesPerHalf + set];
    e.valid = true;
    e.tag = tag;
    e.pfn = pfn;
    ++stats_.fills;
    obs::count(obs::Ev::TbFills);
}

void
TranslationBuffer::flushProcess()
{
    for (uint32_t s = 0; s < config_.entriesPerHalf; ++s)
        entries_[s].valid = false;
    ++stats_.processFlushes;
    obs::count(obs::Ev::TbFlushes);
}

void
TranslationBuffer::flushAll()
{
    for (Entry &e : entries_)
        e.valid = false;
    ++stats_.allFlushes;
    obs::count(obs::Ev::TbFlushes);
}

void
TranslationBuffer::invalidateSingle(VAddr va)
{
    uint32_t half, set, tag;
    locate(va, half, set, tag);
    Entry &e = entries_[half * config_.entriesPerHalf + set];
    if (e.valid && e.tag == tag)
        e.valid = false;
}

void
TranslationBuffer::serialize(ByteWriter &w) const
{
    w.u32(static_cast<uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.b(e.valid);
        w.u32(e.tag);
        w.u32(e.pfn);
    }
    w.u64(stats_.dLookups.value());
    w.u64(stats_.dMisses.value());
    w.u64(stats_.iLookups.value());
    w.u64(stats_.iMisses.value());
    w.u64(stats_.fills.value());
    w.u64(stats_.processFlushes.value());
    w.u64(stats_.allFlushes.value());
    w.u64(stats_.parityInvalidates.value());
}

void
TranslationBuffer::deserialize(ByteReader &r)
{
    const uint32_t n = r.u32();
    if (n != entries_.size())
        sim_throw(SnapshotError,
                  "snapshot TB has %u entries but the machine has %zu",
                  n, entries_.size());
    for (Entry &e : entries_) {
        e.valid = r.b();
        e.tag = r.u32();
        e.pfn = r.u32();
    }
    stats_.dLookups.set(r.u64());
    stats_.dMisses.set(r.u64());
    stats_.iLookups.set(r.u64());
    stats_.iMisses.set(r.u64());
    stats_.fills.set(r.u64());
    stats_.processFlushes.set(r.u64());
    stats_.allFlushes.set(r.u64());
    stats_.parityInvalidates.set(r.u64());
}

} // namespace upc780::mmu
