/**
 * @file
 * Binary serialization primitives for machine-state snapshots.
 *
 * Every stateful component of the modeled machine exposes
 * `serialize(ByteWriter&) const` / `deserialize(ByteReader&)` built on
 * these two classes. The encoding is deliberately dumb: fixed-width
 * little-endian integers, doubles as IEEE-754 bit patterns, strings
 * and blobs length-prefixed. Dumb is what bit-exactness wants — there
 * is exactly one byte sequence for a given machine state, so the
 * snapshot tests can compare restored state by comparing bytes.
 *
 * The reader is fully bounds-checked and throws SnapshotError (never
 * crashes, never reads past the buffer) so a truncated or corrupted
 * snapshot is a typed, recoverable failure. Container-level integrity
 * (magic, version, CRC) lives in snap/snapshot.hh; these classes only
 * guarantee memory safety within one payload.
 */

#ifndef UPC780_COMMON_SERIAL_HH
#define UPC780_COMMON_SERIAL_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"

namespace upc780
{

/** Append-only little-endian byte stream. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    /** IEEE-754 bit pattern: doubles round-trip exactly. */
    void f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *s = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), s, s + n);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Length-prefixed blob. */
    void
    blob(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }

    const std::vector<uint8_t> &data() const { return buf_; }
    size_t size() const { return buf_.size(); }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked reader over a byte buffer; throws SnapshotError. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<uint8_t> &v)
        : ByteReader(v.data(), v.size())
    {}

    uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        return static_cast<uint16_t>(lo | (uint16_t{u8()} << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        return lo | (uint32_t{u16()} << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t{u32()} << 32);
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    bool
    b()
    {
        uint8_t v = u8();
        if (v > 1)
            sim_throw(SnapshotError,
                      "snapshot payload: bad boolean byte 0x%02x at "
                      "offset %zu", v, pos_ - 1);
        return v != 0;
    }

    void
    bytes(void *p, size_t n)
    {
        need(n);
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
    }

    /**
     * Length prefix with a sanity cap: a CRC-colliding corruption must
     * not be able to request a multi-terabyte allocation.
     */
    uint64_t
    size(uint64_t max)
    {
        uint64_t n = u64();
        if (n > max)
            sim_throw(SnapshotError,
                      "snapshot payload: length %llu exceeds cap %llu "
                      "at offset %zu",
                      static_cast<unsigned long long>(n),
                      static_cast<unsigned long long>(max), pos_ - 8);
        return n;
    }

    /** u32 length prefix with a sanity cap (the common vector count). */
    uint32_t
    size32(uint32_t max)
    {
        uint32_t n = u32();
        if (n > max)
            sim_throw(SnapshotError,
                      "snapshot payload: count %u exceeds cap %u at "
                      "offset %zu", n, max, pos_ - 4);
        return n;
    }

    std::string
    str(uint64_t max = 1 << 20)
    {
        uint64_t n = size(max);
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return s;
    }

    std::vector<uint8_t>
    blob(uint64_t max = 1ull << 32)
    {
        uint64_t n = size(max);
        need(n);
        std::vector<uint8_t> v(data_ + pos_,
                               data_ + pos_ + static_cast<size_t>(n));
        pos_ += static_cast<size_t>(n);
        return v;
    }

    /** Advance past @p n bytes without reading them. */
    void
    skip(size_t n)
    {
        need(n);
        pos_ += n;
    }

    size_t remaining() const { return size_ - pos_; }
    size_t offset() const { return pos_; }
    bool done() const { return pos_ == size_; }

    /** Assert the payload was consumed exactly (catches drift). */
    void
    expectEnd(const char *what) const
    {
        if (!done())
            sim_throw(SnapshotError,
                      "snapshot payload '%s': %zu trailing bytes",
                      what, remaining());
    }

  private:
    void
    need(size_t n) const
    {
        if (size_ - pos_ < n)
            sim_throw(SnapshotError,
                      "snapshot payload truncated: need %zu bytes at "
                      "offset %zu of %zu", n, pos_, size_);
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

/** CRC-32 (IEEE 802.3, reflected), the snapshot container checksum. */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

} // namespace upc780

#endif // UPC780_COMMON_SERIAL_HH
