/**
 * @file
 * Small bit-manipulation helpers used throughout the machine model.
 */

#ifndef UPC780_COMMON_BITFIELD_HH
#define UPC780_COMMON_BITFIELD_HH

#include <cstdint>

namespace upc780
{

/** Extract bits [first, last] (inclusive, last >= first) of val. */
constexpr uint32_t
bits(uint32_t val, int last, int first)
{
    int nbits = last - first + 1;
    uint32_t mask = (nbits >= 32) ? 0xffffffffu : ((1u << nbits) - 1);
    return (val >> first) & mask;
}

/** Extract a single bit. */
constexpr bool
bit(uint32_t val, int n)
{
    return (val >> n) & 1u;
}

/** Sign-extend the low @p nbits bits of val to 32 bits. */
constexpr int32_t
sext(uint32_t val, int nbits)
{
    uint32_t shift = static_cast<uint32_t>(32 - nbits);
    return static_cast<int32_t>(val << shift) >> shift;
}

/** Insert @p field into bits [first, first+width) of val. */
constexpr uint32_t
insertBits(uint32_t val, int first, int width, uint32_t field)
{
    uint32_t mask = (width >= 32) ? 0xffffffffu : ((1u << width) - 1);
    return (val & ~(mask << first)) | ((field & mask) << first);
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr uint32_t
alignDown(uint32_t v, uint32_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr uint32_t
alignUp(uint32_t v, uint32_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for nonzero v. */
constexpr int
log2i(uint32_t v)
{
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace upc780

#endif // UPC780_COMMON_BITFIELD_HH
