/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A self-contained xoshiro256** implementation is used instead of
 * std::mt19937 so that workload generation is bit-reproducible across
 * standard library implementations; every experiment in the paper
 * reproduction is seeded and therefore exactly repeatable (addressing
 * the paper's complaint that live timesharing workloads are not).
 */

#ifndef UPC780_COMMON_RANDOM_HH
#define UPC780_COMMON_RANDOM_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace upc780
{

/**
 * Derive a decorrelated child seed for an independent stream.
 *
 * The parallel experiment engine gives every (workload, replication)
 * task — and thus every worker thread — its own RNG stream derived
 * from the experiment's base seed and a stable stream id, so results
 * depend only on the task identity, never on which thread ran it or
 * in what order. Stream 0 is the identity (returns @p base unchanged)
 * so a single-replication run is bit-identical to the historical
 * serial path.
 */
uint64_t deriveSeed(uint64_t base, uint64_t stream);

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x780780780780ULL);

    /** A child RNG on the independent stream @p stream (see deriveSeed). */
    static Rng forStream(uint64_t base_seed, uint64_t stream)
    {
        return Rng(deriveSeed(base_seed, stream));
    }

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights (need not be normalized).
     */
    size_t weighted(std::span<const double> weights);

    /** Geometric-ish run length with the given mean, minimum 1. */
    uint32_t runLength(double mean);

    /**
     * The raw xoshiro256** state, for checkpoint serialization: a
     * restored stream continues bit-exactly where the saved one
     * stopped, which is what makes snapshot/restore of the workload
     * think-time and fault streams deterministic.
     */
    std::array<uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    void
    setState(const std::array<uint64_t, 4> &s)
    {
        s_[0] = s[0];
        s_[1] = s[1];
        s_[2] = s[2];
        s_[3] = s[3];
    }

  private:
    uint64_t s_[4];
};

/**
 * Cumulative-table sampler for repeatedly drawing from one fixed
 * discrete distribution.
 */
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;
    explicit DiscreteSampler(std::span<const double> weights);

    /** True if the sampler has at least one nonzero weight. */
    bool valid() const { return !cdf_.empty(); }

    /** Draw an index using the supplied RNG. */
    size_t sample(Rng &rng) const;

  private:
    std::vector<double> cdf_;
};

} // namespace upc780

#endif // UPC780_COMMON_RANDOM_HH
