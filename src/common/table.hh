/**
 * @file
 * Plain-text table formatter used by the bench harnesses to print the
 * paper's tables with measured-vs-paper columns.
 */

#ifndef UPC780_COMMON_TABLE_HH
#define UPC780_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace upc780
{

/** Column-aligned text table with a title and optional rules. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal rule. */
    void rule();

    /** Render to a string. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-point double. */
    static std::string num(double v, int prec = 3);

    /** Format helper: percentage with given precision. */
    static std::string pct(double v, int prec = 2);

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool isRule = false;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

} // namespace upc780

#endif // UPC780_COMMON_TABLE_HH
