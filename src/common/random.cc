#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace upc780
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

uint64_t
deriveSeed(uint64_t base, uint64_t stream)
{
    if (stream == 0)
        return base;
    // Two splitmix64 rounds over (base, stream) mixed with distinct
    // odd constants: cheap, stateless, and empirically free of the
    // low-bit correlations naive seed+id arithmetic has.
    uint64_t x = base ^ (stream * 0xd1342543de82ef95ULL);
    uint64_t a = splitmix64(x);
    x ^= 0x9e3779b97f4a7c15ULL;
    return a ^ splitmix64(x);
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below called with zero bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

size_t
Rng::weighted(std::span<const double> weights)
{
    double total = 0.0;
    for (double w : weights)
        total += std::max(w, 0.0);
    if (total <= 0.0)
        panic("Rng::weighted: all weights non-positive");
    double x = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        double w = std::max(weights[i], 0.0);
        if (x < w)
            return i;
        x -= w;
    }
    return weights.size() - 1;
}

uint32_t
Rng::runLength(double mean)
{
    if (mean <= 1.0)
        return 1;
    // Geometric with success probability 1/mean, shifted to minimum 1.
    double p = 1.0 / mean;
    double u = uniform();
    double len = 1.0 + std::floor(std::log1p(-u) / std::log1p(-p));
    if (len < 1.0)
        len = 1.0;
    if (len > 1e6)
        len = 1e6;
    return static_cast<uint32_t>(len);
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights)
{
    double total = 0.0;
    cdf_.reserve(weights.size());
    for (double w : weights) {
        total += std::max(w, 0.0);
        cdf_.push_back(total);
    }
    if (total <= 0.0) {
        cdf_.clear();
    } else {
        for (double &c : cdf_)
            c /= total;
    }
}

size_t
DiscreteSampler::sample(Rng &rng) const
{
    if (cdf_.empty())
        panic("DiscreteSampler::sample on empty sampler");
    double x = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
    if (it == cdf_.end())
        --it;
    return static_cast<size_t>(it - cdf_.begin());
}

} // namespace upc780
