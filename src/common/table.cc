#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace upc780
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells), false});
}

void
TextTable::rule()
{
    rows_.push_back({{}, true});
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::pct(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v);
    return buf;
}

std::string
TextTable::str() const
{
    // Compute column widths over header and all rows.
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        if (!r.isRule)
            grow(r.cells);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (total < title_.size())
        total = title_.size();

    std::ostringstream os;
    os << title_ << "\n" << std::string(total, '=') << "\n";

    static const std::string empty;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : empty;
            // Left-align the first column, right-align the rest.
            if (i == 0) {
                os << c << std::string(widths[i] - c.size(), ' ');
            } else {
                os << std::string(widths[i] - c.size(), ' ') << c;
            }
            if (i + 1 < widths.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows_) {
        if (r.isRule)
            os << std::string(total, '-') << "\n";
        else
            emit(r.cells);
    }
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace upc780
