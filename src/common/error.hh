/**
 * @file
 * Recoverable simulation errors.
 *
 * The original gem5-style convention (see logging.hh) killed the whole
 * process for every unexpected condition. That is the right call for
 * panic() — an internal simulator bug — but it made a multi-workload
 * experiment as fragile as its most fragile workload. The measured
 * VAX-11/780 rode through correctable faults via its machine-check
 * microcode; the harness should be at least that robust. User-input
 * and guest-program errors therefore throw a SimError subclass, which
 * the composite experiment runner catches per workload so one failure
 * yields a partial-result report instead of a dead process.
 *
 *  - ConfigError:   bad user configuration or malformed workload setup
 *                   (what fatal() used to cover).
 *  - GuestError:    the simulated program did something the model does
 *                   not support (undefined opcode, unmapped VA).
 *  - WatchdogError: the simulation watchdog detected no forward
 *                   progress (livelock, stuck stall, runaway interval).
 *  - AuditError:    a runtime accounting invariant failed (e.g. the
 *                   histogram no longer sums to the monitored cycles).
 *  - SnapshotError: a machine-state snapshot file is unusable —
 *                   truncated, bit-flipped, wrong version, or taken
 *                   under a different configuration.
 *
 * panic() remains an abort: an invariant violation inside the
 * simulator itself is not recoverable by policy.
 */

#ifndef UPC780_COMMON_ERROR_HH
#define UPC780_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/logging.hh"

namespace upc780
{

/** Base class of all recoverable simulation errors. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Unusable user configuration or malformed workload input. */
class ConfigError : public SimError
{
  public:
    using SimError::SimError;
};

/** The simulated program exercised unsupported behaviour. */
class GuestError : public SimError
{
  public:
    using SimError::SimError;
};

/** The watchdog detected no forward progress. */
class WatchdogError : public SimError
{
  public:
    using SimError::SimError;
};

/** A runtime accounting invariant failed. */
class AuditError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * A checkpoint/snapshot file cannot be used: it is truncated, fails
 * its checksum, carries the wrong magic or format version, or was
 * taken under a different (machine, OS, workload) configuration than
 * the one trying to restore it. Corruption is always rejected with
 * this error — never a crash, never a silent mis-restore.
 */
class SnapshotError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * The static control-store verifier (ulint) found a defect in the
 * microprogram or its attribution map — either at simulator startup or
 * because a measured histogram touched a flagged micro-address, which
 * would silently corrupt the derived tables.
 */
class LintError : public SimError
{
  public:
    using SimError::SimError;
};

} // namespace upc780

/** Throw a SimError subclass with a printf-formatted message. */
#define sim_throw(Type, ...) \
    throw Type(::upc780::detail::vformat(__VA_ARGS__))

#endif // UPC780_COMMON_ERROR_HH
