#include "common/logging.hh"

#include <cstdarg>
#include <vector>

namespace upc780
{
namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

namespace
{

LogLevel
parseLogLevel()
{
    const char *env = std::getenv("UPC780_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    std::string v(env);
    if (v == "quiet" || v == "error" || v == "0")
        return LogLevel::Quiet;
    if (v == "warn" || v == "1")
        return LogLevel::Warn;
    if (v == "info" || v == "2")
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: unrecognized UPC780_LOG_LEVEL '%s'; using info\n",
                 env);
    return LogLevel::Info;
}

LogLevel currentLevel = LogLevel::Info;
bool levelLoaded = false;

} // namespace

LogLevel
logLevel()
{
    if (!levelLoaded) {
        currentLevel = parseLogLevel();
        levelLoaded = true;
    }
    return currentLevel;
}

void
reloadLogLevel()
{
    levelLoaded = false;
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace upc780
