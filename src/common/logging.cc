#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace upc780
{
namespace detail
{

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (n < 0) {
        va_end(args2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args2);
    va_end(args2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

namespace
{

/**
 * Serializes every diagnostic line. The parallel experiment engine
 * runs workloads on worker threads that warn() concurrently (e.g. a
 * fault campaign reporting partial failures), and interleaved partial
 * fprintf output would garble the very report a human needs to debug
 * them.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

namespace
{

LogLevel
parseLogLevel()
{
    const char *env = std::getenv("UPC780_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Info;
    std::string v(env);
    if (v == "quiet" || v == "error" || v == "0")
        return LogLevel::Quiet;
    if (v == "warn" || v == "1")
        return LogLevel::Warn;
    if (v == "info" || v == "2")
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: unrecognized UPC780_LOG_LEVEL '%s'; using info\n",
                 env);
    return LogLevel::Info;
}

// -1 encodes "not parsed yet"; concurrent first calls may both parse
// the environment, but they compute the same answer, so the race is
// benign and the atomic keeps it data-race-free under TSan.
std::atomic<int> cachedLevel{-1};

} // namespace

LogLevel
logLevel()
{
    int v = cachedLevel.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(parseLogLevel());
        cachedLevel.store(v, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(v);
}

void
reloadLogLevel()
{
    cachedLevel.store(-1, std::memory_order_relaxed);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn)
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info)
        return;
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace upc780
