/**
 * @file
 * Lightweight statistics accumulators used by hardware monitors and the
 * analysis layer. These model the counters an instrumented component
 * exposes (cf. the cache study counters of Clark [2]).
 */

#ifndef UPC780_COMMON_STATS_HH
#define UPC780_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace upc780
{

/** A single named monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(uint64_t n) { value_ += n; }
    void reset() { value_ = 0; }
    /** Restore a checkpointed value (snapshot deserialization only). */
    void set(uint64_t v) { value_ = v; }

    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/**
 * Running scalar statistics: count / sum / min / max / mean plus
 * variance and standard deviation (Welford's online algorithm, so a
 * long seed sweep never loses precision to catastrophic cancellation).
 */
class RunningStat
{
  public:
    void sample(double x);
    void reset();

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Sample (n-1) variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation; 0 with fewer than two samples. */
    double stddev() const;
    /** stddev / |mean| (coefficient of variation); 0 when mean is 0. */
    double relStddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double welfordMean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Records instruction "headway" between occurrences of an event, as the
 * paper's Table 7 reports (average instructions between interrupts and
 * context switches).
 */
class HeadwayTracker
{
  public:
    /** Note that the event occurred at absolute instruction number n. */
    void occur(uint64_t instruction_number);

    uint64_t occurrences() const { return occurrences_; }

    /** Average instruction headway over [0, total_instructions]. */
    double headway(uint64_t total_instructions) const;

  private:
    uint64_t occurrences_ = 0;
    uint64_t lastAt_ = 0;
};

} // namespace upc780

#endif // UPC780_COMMON_STATS_HH
