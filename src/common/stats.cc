#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace upc780
{

void
RunningStat::sample(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - welfordMean_;
    welfordMean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - welfordMean_);
}

void
RunningStat::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    welfordMean_ = m2_ = 0.0;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::relStddev() const
{
    const double m = mean();
    return m != 0.0 ? stddev() / std::fabs(m) : 0.0;
}

void
HeadwayTracker::occur(uint64_t instruction_number)
{
    ++occurrences_;
    lastAt_ = instruction_number;
}

double
HeadwayTracker::headway(uint64_t total_instructions) const
{
    if (occurrences_ == 0)
        return 0.0;
    return static_cast<double>(total_instructions) /
           static_cast<double>(occurrences_);
}

} // namespace upc780
