#include "common/stats.hh"

#include <algorithm>

namespace upc780
{

void
RunningStat::sample(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void
RunningStat::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
HeadwayTracker::occur(uint64_t instruction_number)
{
    ++occurrences_;
    lastAt_ = instruction_number;
}

double
HeadwayTracker::headway(uint64_t total_instructions) const
{
    if (occurrences_ == 0)
        return 0.0;
    return static_cast<double>(total_instructions) /
           static_cast<double>(occurrences_);
}

} // namespace upc780
