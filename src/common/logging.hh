/**
 * @file
 * Status and error reporting for the simulator, following the gem5
 * fatal/panic convention:
 *
 *  - panic():  an internal simulator bug; should never happen regardless
 *              of user input. Aborts (may dump core).
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid workload). Exits with code 1.
 *  - warn():   something is modeled approximately; simulation continues.
 *  - inform(): normal operating status.
 *
 * All diagnostics go to stderr, never stdout: stdout is reserved for
 * the tables and histograms the examples print, so simulator output
 * stays machine-parseable. The UPC780_LOG_LEVEL environment variable
 * filters warn/inform: "quiet"/"error"/0 silences both, "warn"/1
 * keeps warnings only, "info"/2 (the default) keeps everything.
 *
 * All entry points are safe to call from concurrent experiment-engine
 * workers: each diagnostic line is emitted atomically (never
 * interleaved mid-line), and the cached log level is read and reloaded
 * without data races.
 */

#ifndef UPC780_COMMON_LOGGING_HH
#define UPC780_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace upc780
{

namespace detail
{

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Verbosity tiers selected by UPC780_LOG_LEVEL. */
enum class LogLevel
{
    Quiet, //!< fatal/panic only
    Warn,  //!< + warn()
    Info,  //!< + inform() (default)
};

/** The active level (parses UPC780_LOG_LEVEL on first use). */
LogLevel logLevel();

/** Re-read UPC780_LOG_LEVEL (tests that setenv mid-process). */
void reloadLogLevel();

} // namespace detail

} // namespace upc780

/** Abort the simulation: internal invariant violated (simulator bug). */
#define panic(...) \
    ::upc780::detail::panicImpl(__FILE__, __LINE__, \
                                ::upc780::detail::vformat(__VA_ARGS__))

/** Terminate the simulation: unrecoverable user/configuration error. */
#define fatal(...) \
    ::upc780::detail::fatalImpl(__FILE__, __LINE__, \
                                ::upc780::detail::vformat(__VA_ARGS__))

/** Non-fatal warning about approximate or suspicious behaviour. */
#define warn(...) \
    ::upc780::detail::warnImpl(::upc780::detail::vformat(__VA_ARGS__))

/** Informational status message. */
#define inform(...) \
    ::upc780::detail::informImpl(::upc780::detail::vformat(__VA_ARGS__))

#endif // UPC780_COMMON_LOGGING_HH
