/**
 * @file
 * PMU-style event counters for the simulator itself.
 *
 * The paper's instrument (the UPC histogram board) is one bookkeeping
 * of where cycles go; this registry is a second, independent one,
 * incremented live at the component that produced each event (EBOX,
 * IBOX, TB, cache, write buffer, OS, monitor). Where both paths count
 * the same physical quantity the two must agree exactly — the
 * CounterPoint-style refutation check that tests/obs_crosscheck_test.cc
 * performs. Styled after a per-component HPM counter fabric: every
 * counter is a named 64-bit event count, snapshot/accumulate are
 * order-independent sums, and the whole layer compiles away when
 * UPC780_OBS is off.
 *
 * Threading model: counters are delivered through a thread-local
 * "current scope" pointer (ObsScope). The parallel experiment engine
 * runs each workload wholly on one worker thread, so a scope installed
 * for the duration of a run observes exactly that run and nothing
 * else, with no atomics on the hot path.
 */

#ifndef UPC780_OBS_COUNTERS_HH
#define UPC780_OBS_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#ifndef UPC780_OBS_ENABLED
#define UPC780_OBS_ENABLED 1
#endif

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::obs
{

/** Every event the fabric counts, one per instrumentation point. */
enum class Ev : uint32_t
{
    // EBOX per-cycle classification (deferred to end of cycle so the
    // counts see exactly the cycles the UPC monitor's probe sees).
    IboxDecodes,        //!< I-Decode opcode dispatches (instructions)
    EboxUops,           //!< executed (counted) microinstructions
    EboxIbStallCycles,  //!< cycles at the four IB-stall addresses
    EboxStallCycles,    //!< read/write-stalled cycles
    EboxAborts,         //!< ABORT-row cycles (microtraps, CS parity)
    EboxHaltCycles,     //!< cycles while halted
    EboxMemReadCycles,  //!< counted cycles at ReadV/ReadP words
    EboxMemWriteCycles, //!< counted cycles at WriteV words
    TbMissServicesD,    //!< D-stream TB microtraps taken
    TbMissServicesI,    //!< I-stream TB microtraps taken
    IrqDispatches,      //!< interrupt dispatches at end-of-instruction
    MachineChecks,      //!< machine checks dispatched

    // IBOX.
    IbFills,            //!< instruction-buffer fill requests
    IbRedirects,        //!< fill-stream redirects (PC changes)

    // Translation buffer (raw hardware lookups; includes speculative
    // I-stream misses that a redirect discards before service).
    TbDHits,
    TbDMisses,
    TbIHits,
    TbIMisses,
    TbFills,
    TbFlushes,

    // Cache / write buffer / memory.
    CacheDReads,
    CacheDReadMisses,
    CacheIReads,
    CacheIReadMisses,
    CacheWrites,
    CacheWriteHits,
    WbWrites,
    WbStallCycles,
    MemUnalignedRefs,

    // OS substrate.
    OsContextSwitches,
    OsSyscalls,
    OsReschedRequests,

    // UPC monitor board (what the instrument itself observed).
    UpcCycles,
    UpcStallCycles,

    NumEvents
};

constexpr size_t NumEvents = static_cast<size_t>(Ev::NumEvents);

/** Stable dotted name, e.g. "ebox.uops" (metrics tables, upctrace). */
std::string_view evName(Ev e);

/**
 * A value-type snapshot of the registry: what lands in a
 * WorkloadResult and is folded into the composite. Plain uint64_t
 * element-wise sums, so accumulation is order-independent — the same
 * contract Histogram::merge gives the parallel engine.
 */
struct Snapshot
{
    std::array<uint64_t, NumEvents> counters{};

    uint64_t value(Ev e) const { return counters[size_t(e)]; }

    void
    accumulate(const Snapshot &o)
    {
        for (size_t i = 0; i < NumEvents; ++i)
            counters[i] += o.counters[i];
    }

    bool operator==(const Snapshot &o) const = default;
};

/** The counter fabric for one measurement. */
class CounterRegistry
{
  public:
    void bump(Ev e) { counters_[size_t(e)] += enabled_; }
    void add(Ev e, uint64_t n) { counters_[size_t(e)] += enabled_ ? n : 0; }

    uint64_t value(Ev e) const { return counters_[size_t(e)]; }

    /**
     * Gate counting, mirroring the UPC monitor's start/stop: the
     * experiment runner flips this together with the monitor so both
     * bookkeepings cover the identical cycle window.
     */
    void setEnabled(bool on) { enabled_ = on ? 1 : 0; }
    bool enabled() const { return enabled_ != 0; }

    void clear() { counters_.fill(0); }

    Snapshot
    snapshot() const
    {
        Snapshot s;
        s.counters = counters_;
        return s;
    }

    /** Checkpoint counter values + gate (counters.cc). */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    std::array<uint64_t, NumEvents> counters_{};
    uint64_t enabled_ = 0;
};

/** Render non-zero counters as an aligned two-column table. */
std::string writeCounterTable(const Snapshot &s);

/**
 * End-of-cycle event summary the EBOX hands to the registry. Flags are
 * raised at the decision points inside the cycle (decode consumption,
 * trap entry, interrupt dispatch, memory-function classification) and
 * emitted once, after the cycle's CycleOut is final — the same moment
 * the monitor's passive probe observes the cycle, so monitor gating
 * that flips mid-cycle (the OS-assist switch hook) can never put one
 * bookkeeping inside the measurement window and the other outside.
 */
struct CycleEvents
{
    bool halt = false;
    bool abort = false;
    bool ibStall = false;
    bool decode = false;
    bool memRead = false;
    bool memWrite = false;
    bool tbMissD = false;
    bool tbMissI = false;
    bool irq = false;
    bool mcheck = false;
};

class EventTracer;

namespace detail
{

struct Tls
{
    CounterRegistry *reg = nullptr;
    EventTracer *tracer = nullptr;
};

inline thread_local Tls tls;

} // namespace detail

/** The registry events on this thread currently land in (may be null). */
inline CounterRegistry *
counters()
{
#if UPC780_OBS_ENABLED
    return detail::tls.reg;
#else
    return nullptr;
#endif
}

/** The tracer events on this thread currently land in (may be null). */
inline EventTracer *
tracer()
{
#if UPC780_OBS_ENABLED
    return detail::tls.tracer;
#else
    return nullptr;
#endif
}

/** Count one event into the current scope, if any. */
inline void
count(Ev e)
{
    if (CounterRegistry *r = counters())
        r->bump(e);
}

/** Count @p n events into the current scope, if any. */
inline void
count(Ev e, uint64_t n)
{
    if (CounterRegistry *r = counters())
        r->add(e, n);
}

/** Classify one finished EBOX cycle into the current scope, if any. */
void emitCycle(const CycleEvents &ev, bool stalled);

/**
 * Classify one pad cycle (executed nop microinstruction, no flags, not
 * stalled) into the current scope: exactly emitCycle({}, false), kept
 * branch-free for the batched pad-superblock executor.
 */
inline void
emitPadCycle()
{
    if (CounterRegistry *r = counters())
        r->bump(Ev::EboxUops);
}

/**
 * Classify @p n pad cycles at once: exactly n emitPadCycle() calls.
 * Sound to batch because the counter gate (setEnabled) only flips from
 * within executed microinstructions, never inside a pad run.
 */
inline void
emitPadCycles(uint64_t n)
{
    if (CounterRegistry *r = counters())
        r->add(Ev::EboxUops, n);
}

/**
 * Classify @p n memory-stall cycles at once: exactly n
 * emitCycle(ev, true) calls (a stalled cycle counts only
 * EboxStallCycles regardless of event flags). Used by the idle-leap
 * engine when it fast-forwards a read/write stall window.
 */
inline void
emitStallCycles(uint64_t n)
{
    if (CounterRegistry *r = counters())
        r->add(Ev::EboxStallCycles, n);
}

/**
 * Classify @p n IB-starved stall cycles at once: exactly n
 * emitCycle(ev, false) calls with only the ibStall flag set. Used by
 * the idle-leap engine when it fast-forwards a window in which the
 * EBOX re-fails the same IB gate every cycle.
 */
inline void
emitIbStallCycles(uint64_t n)
{
    if (CounterRegistry *r = counters())
        r->add(Ev::EboxIbStallCycles, n);
}

/**
 * RAII installation of the thread-local scope: the experiment runner
 * holds one for the duration of a workload run. Nests (restores the
 * previous scope on destruction) so probes and tests can stack.
 */
class ObsScope
{
  public:
    ObsScope(CounterRegistry *reg, EventTracer *tr)
    {
#if UPC780_OBS_ENABLED
        prev_ = detail::tls;
        detail::tls.reg = reg;
        detail::tls.tracer = tr;
#else
        (void)reg;
        (void)tr;
#endif
    }

    ~ObsScope()
    {
#if UPC780_OBS_ENABLED
        detail::tls = prev_;
#endif
    }

    ObsScope(const ObsScope &) = delete;
    ObsScope &operator=(const ObsScope &) = delete;

  private:
#if UPC780_OBS_ENABLED
    detail::Tls prev_;
#endif
};

/**
 * Runtime observability level for an experiment. `counters` defaults
 * from the UPC780_OBS environment variable ("off"/"0" disables), so a
 * deployed binary can drop to the near-zero-cost path without a
 * rebuild; `traceDepth` > 0 additionally attaches a ring-buffer event
 * tracer of that capacity, filtered by `traceMask` (see trace.hh).
 */
struct Config
{
    bool counters = defaultCountersOn();
    uint32_t traceDepth = 0;
    uint32_t traceMask = 0xffffffffu;

    static bool defaultCountersOn();
};

} // namespace upc780::obs

#endif // UPC780_OBS_COUNTERS_HH
