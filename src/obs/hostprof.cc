#include "obs/hostprof.hh"

#include <cstdio>

#include "obs/counters.hh"

namespace upc780::obs
{

std::string_view
phaseName(Phase p)
{
    switch (p) {
      case Phase::Build:
        return "build";
      case Phase::Warmup:
        return "warmup";
      case Phase::Measure:
        return "measure";
      default:
        return "?";
    }
}

namespace
{

double
measureSeconds(const HostProfile &p)
{
    return static_cast<double>(p.value(Phase::Measure)) * 1e-9;
}

} // namespace

double
kips(const HostProfile &p, uint64_t instructions)
{
    double s = measureSeconds(p);
    return s > 0 ? static_cast<double>(instructions) / s / 1e3 : 0.0;
}

double
simKhz(const HostProfile &p, uint64_t cycles)
{
    double s = measureSeconds(p);
    return s > 0 ? static_cast<double>(cycles) / s / 1e3 : 0.0;
}

double
slowdown(const HostProfile &p, uint64_t cycles)
{
    // Simulated seconds at 200 ns per cycle.
    double sim_s = static_cast<double>(cycles) * 200e-9;
    double host_s = measureSeconds(p);
    return sim_s > 0 ? host_s / sim_s : 0.0;
}

std::string
writeMetrics(const std::vector<MetricsRow> &rows,
             const Snapshot &composite)
{
    std::string out;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-24s %9s %9s %9s %9s %9s %9s\n", "workload",
                  "build-ms", "warm-ms", "meas-ms", "KIPS", "sim-KHz",
                  "slowdown");
    out += line;
    MetricsRow total;
    total.name = "total";
    for (const MetricsRow &r : rows) {
        std::snprintf(
            line, sizeof(line),
            "  %-24.24s %9.1f %9.1f %9.1f %9.0f %9.0f %7.2fx\n",
            r.name.c_str(), r.host.value(Phase::Build) * 1e-6,
            r.host.value(Phase::Warmup) * 1e-6,
            r.host.value(Phase::Measure) * 1e-6, kips(r.host, r.instructions),
            simKhz(r.host, r.cycles), slowdown(r.host, r.cycles));
        out += line;
        total.instructions += r.instructions;
        total.cycles += r.cycles;
        total.host.accumulate(r.host);
    }
    if (rows.size() > 1) {
        std::snprintf(
            line, sizeof(line),
            "  %-24.24s %9.1f %9.1f %9.1f %9.0f %9.0f %7.2fx\n",
            total.name.c_str(), total.host.value(Phase::Build) * 1e-6,
            total.host.value(Phase::Warmup) * 1e-6,
            total.host.value(Phase::Measure) * 1e-6,
            kips(total.host, total.instructions),
            simKhz(total.host, total.cycles),
            slowdown(total.host, total.cycles));
        out += line;
    }
    out += "\nEvent counters (measurement interval):\n";
    out += writeCounterTable(composite);
    return out;
}

} // namespace upc780::obs
