/**
 * @file
 * Host-side profiling: scoped RAII timers that attribute wall-clock
 * time to experiment phases, and the sim-rate summary (KIPS of guest
 * instructions, simulated KHz, slowdown against the real 780's 5 MHz
 * cycle clock) surfaced by `--metrics` and the bench harness.
 *
 * Host nanoseconds are *not* part of the deterministic result surface:
 * two identical runs produce identical counters and histograms but
 * different timings, so nothing here may feed an equality check.
 */

#ifndef UPC780_OBS_HOSTPROF_HH
#define UPC780_OBS_HOSTPROF_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace upc780::obs
{

struct Snapshot;

/** Experiment phases the runner times. */
enum class Phase : uint32_t
{
    Build,    //!< machine construction, lint, boot
    Warmup,   //!< unmeasured warm-up instructions
    Measure,  //!< the measurement interval itself
    NumPhases
};

constexpr size_t NumPhases = static_cast<size_t>(Phase::NumPhases);

std::string_view phaseName(Phase p);

/** Wall-clock nanoseconds per phase; sums like every other counter. */
struct HostProfile
{
    std::array<uint64_t, NumPhases> ns{};

    uint64_t value(Phase p) const { return ns[size_t(p)]; }

    void
    accumulate(const HostProfile &o)
    {
        for (size_t i = 0; i < NumPhases; ++i)
            ns[i] += o.ns[i];
    }
};

/** Times a scope and adds the elapsed nanoseconds to one phase. */
class ScopedTimer
{
  public:
    ScopedTimer(HostProfile &profile, Phase phase)
        : profile_(profile), phase_(phase),
          t0_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        auto dt = std::chrono::steady_clock::now() - t0_;
        profile_.ns[size_t(phase_)] += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    HostProfile &profile_;
    Phase phase_;
    std::chrono::steady_clock::time_point t0_;
};

/** Guest kilo-instructions per host second over the measure phase. */
double kips(const HostProfile &p, uint64_t instructions);

/** Simulated kilo-cycles per host second over the measure phase. */
double simKhz(const HostProfile &p, uint64_t cycles);

/**
 * Slowdown against the real machine: host seconds per simulated
 * second (the 780 runs one cycle per 200 ns, i.e. 5000 simulated KHz).
 */
double slowdown(const HostProfile &p, uint64_t cycles);

/** One row of the --metrics table. */
struct MetricsRow
{
    std::string name;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    HostProfile host;
};

/**
 * Render the per-workload metrics table (phase times and sim rate)
 * followed by the composite event-counter table.
 */
std::string writeMetrics(const std::vector<MetricsRow> &rows,
                         const Snapshot &composite);

} // namespace upc780::obs

#endif // UPC780_OBS_HOSTPROF_HH
