#include "obs/counters.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/serial.hh"

namespace upc780::obs
{

std::string_view
evName(Ev e)
{
    switch (e) {
      case Ev::IboxDecodes:
        return "ibox.decodes";
      case Ev::EboxUops:
        return "ebox.uops";
      case Ev::EboxIbStallCycles:
        return "ebox.ib_stall_cycles";
      case Ev::EboxStallCycles:
        return "ebox.stall_cycles";
      case Ev::EboxAborts:
        return "ebox.aborts";
      case Ev::EboxHaltCycles:
        return "ebox.halt_cycles";
      case Ev::EboxMemReadCycles:
        return "ebox.mem_read_cycles";
      case Ev::EboxMemWriteCycles:
        return "ebox.mem_write_cycles";
      case Ev::TbMissServicesD:
        return "tb.serviced_d_misses";
      case Ev::TbMissServicesI:
        return "tb.serviced_i_misses";
      case Ev::IrqDispatches:
        return "ebox.irq_dispatches";
      case Ev::MachineChecks:
        return "ebox.machine_checks";
      case Ev::IbFills:
        return "ibox.fills";
      case Ev::IbRedirects:
        return "ibox.redirects";
      case Ev::TbDHits:
        return "tb.d_hits";
      case Ev::TbDMisses:
        return "tb.d_misses";
      case Ev::TbIHits:
        return "tb.i_hits";
      case Ev::TbIMisses:
        return "tb.i_misses";
      case Ev::TbFills:
        return "tb.fills";
      case Ev::TbFlushes:
        return "tb.flushes";
      case Ev::CacheDReads:
        return "cache.d_reads";
      case Ev::CacheDReadMisses:
        return "cache.d_read_misses";
      case Ev::CacheIReads:
        return "cache.i_reads";
      case Ev::CacheIReadMisses:
        return "cache.i_read_misses";
      case Ev::CacheWrites:
        return "cache.writes";
      case Ev::CacheWriteHits:
        return "cache.write_hits";
      case Ev::WbWrites:
        return "wb.writes";
      case Ev::WbStallCycles:
        return "wb.stall_cycles";
      case Ev::MemUnalignedRefs:
        return "mem.unaligned_refs";
      case Ev::OsContextSwitches:
        return "os.context_switches";
      case Ev::OsSyscalls:
        return "os.syscalls";
      case Ev::OsReschedRequests:
        return "os.resched_requests";
      case Ev::UpcCycles:
        return "upc.cycles";
      case Ev::UpcStallCycles:
        return "upc.stall_cycles";
      default:
        return "?";
    }
}

std::string
writeCounterTable(const Snapshot &s)
{
    std::string out;
    char line[96];
    for (size_t i = 0; i < NumEvents; ++i) {
        if (!s.counters[i])
            continue;
        std::snprintf(line, sizeof(line), "  %-24s %14llu\n",
                      std::string(evName(static_cast<Ev>(i))).c_str(),
                      static_cast<unsigned long long>(s.counters[i]));
        out += line;
    }
    return out;
}

void
emitCycle(const CycleEvents &ev, bool stalled)
{
    CounterRegistry *r = counters();
    if (!r || !r->enabled())
        return;
    if (stalled) {
        r->bump(Ev::EboxStallCycles);
        return;
    }
    if (ev.halt) {
        r->bump(Ev::EboxHaltCycles);
        return;
    }
    if (ev.abort) {
        r->bump(Ev::EboxAborts);
        if (ev.tbMissD)
            r->bump(Ev::TbMissServicesD);
        if (ev.tbMissI)
            r->bump(Ev::TbMissServicesI);
        return;
    }
    if (ev.ibStall) {
        r->bump(Ev::EboxIbStallCycles);
        return;
    }
    // A counted (executed) microinstruction.
    r->bump(Ev::EboxUops);
    if (ev.decode)
        r->bump(Ev::IboxDecodes);
    if (ev.memRead)
        r->bump(Ev::EboxMemReadCycles);
    if (ev.memWrite)
        r->bump(Ev::EboxMemWriteCycles);
    if (ev.irq)
        r->bump(Ev::IrqDispatches);
    if (ev.mcheck)
        r->bump(Ev::MachineChecks);
}

void
CounterRegistry::serialize(ByteWriter &w) const
{
    w.u32(static_cast<uint32_t>(NumEvents));
    for (uint64_t v : counters_)
        w.u64(v);
    w.u64(enabled_);
}

void
CounterRegistry::deserialize(ByteReader &r)
{
    const uint32_t n = r.u32();
    if (n != NumEvents)
        sim_throw(SnapshotError,
                  "snapshot counter registry has %u events, this build "
                  "has %zu", n, NumEvents);
    for (uint64_t &v : counters_)
        v = r.u64();
    enabled_ = r.u64();
}

bool
Config::defaultCountersOn()
{
    static const bool on = [] {
        const char *v = std::getenv("UPC780_OBS");
        if (!v)
            return true;
        return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
                 std::strcmp(v, "OFF") == 0);
    }();
    return on;
}

} // namespace upc780::obs
