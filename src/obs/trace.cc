#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/serial.hh"

namespace upc780::obs
{

std::string_view
catName(Cat c)
{
    switch (c) {
      case Cat::Instr:
        return "instr";
      case Cat::Mem:
        return "mem";
      case Cat::Tb:
        return "tb";
      case Cat::Os:
        return "os";
      case Cat::Irq:
        return "irq";
      case Cat::Fault:
        return "fault";
      case Cat::Sim:
        return "sim";
      default:
        return "?";
    }
}

bool
parseCategories(std::string_view csv, uint32_t &mask)
{
    if (csv == "all") {
        mask = AllCats;
        return true;
    }
    uint32_t out = 0;
    while (!csv.empty()) {
        size_t comma = csv.find(',');
        std::string_view tok = csv.substr(0, comma);
        bool found = false;
        for (uint32_t bit = 1; bit <= AllCats; bit <<= 1) {
            if (tok == catName(static_cast<Cat>(bit))) {
                out |= bit;
                found = true;
                break;
            }
        }
        if (!found)
            return false;
        csv = comma == std::string_view::npos ? std::string_view{}
                                              : csv.substr(comma + 1);
    }
    mask = out;
    return true;
}

std::string_view
codeName(Code c)
{
    switch (c) {
      case Code::InstrRetired:
        return "instr";
      case Code::TbMissD:
        return "tbmiss.d";
      case Code::TbMissI:
        return "tbmiss.i";
      case Code::CtxSwitch:
        return "ctxswitch";
      case Code::Syscall:
        return "syscall";
      case Code::IrqDispatch:
        return "irq";
      case Code::MachineCheck:
        return "mcheck";
      case Code::FaultInjected:
        return "fault";
      case Code::MeasureStart:
        return "measure.start";
      case Code::MeasureStop:
        return "measure.stop";
      default:
        return "?";
    }
}

EventTracer::EventTracer(size_t depth, uint32_t mask)
    : ring_(depth ? depth : 1), mask_(mask)
{}

std::vector<TraceEvent>
EventTracer::events() const
{
    std::vector<TraceEvent> out;
    size_t n = emitted_ < ring_.size() ? static_cast<size_t>(emitted_)
                                       : ring_.size();
    out.reserve(n);
    // With fewer emits than capacity the valid region is [0, next_);
    // after wraparound the oldest surviving event sits at next_.
    size_t start = emitted_ < ring_.size() ? 0 : next_;
    for (size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
EventTracer::clear()
{
    std::fill(ring_.begin(), ring_.end(), TraceEvent{});
    next_ = 0;
    emitted_ = 0;
    filtered_ = 0;
}

std::vector<TraceEvent>
mergeStreams(const std::vector<std::vector<TraceEvent>> &streams)
{
    std::vector<TraceEvent> out;
    size_t total = 0;
    for (const auto &s : streams)
        total += s.size();
    out.reserve(total);
    for (size_t i = 0; i < streams.size(); ++i) {
        for (TraceEvent e : streams[i]) {
            e.stream = static_cast<uint16_t>(i);
            out.push_back(e);
        }
    }
    // Each input stream is monotone in ts, so a stable sort on (ts,
    // stream) is a deterministic k-way merge: relative order within a
    // stream is preserved and cross-stream ties break by stream index.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.stream < b.stream;
                     });
    return out;
}

std::string
toChromeJson(const std::vector<TraceEvent> &events)
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[256];
    bool first = true;
    for (const TraceEvent &e : events) {
        // One machine cycle is 200 ns; trace_event ts is in µs.
        double us = static_cast<double>(e.ts) * 0.2;
        std::snprintf(
            buf, sizeof(buf),
            "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
            "\"pid\":1,\"tid\":%u,\"ts\":%.1f,"
            "\"args\":{\"arg0\":%llu,\"arg1\":%u,\"cycle\":%llu}}",
            first ? "" : ",",
            std::string(codeName(static_cast<Code>(e.code))).c_str(),
            std::string(catName(static_cast<Cat>(e.cat))).c_str(),
            static_cast<unsigned>(e.stream), us,
            static_cast<unsigned long long>(e.arg0),
            static_cast<unsigned>(e.arg1),
            static_cast<unsigned long long>(e.ts));
        out += buf;
        first = false;
    }
    out += "\n]}\n";
    return out;
}

void
EventTracer::serialize(ByteWriter &w) const
{
    w.u64(ring_.size());
    for (const TraceEvent &e : ring_) {
        w.u64(e.ts);
        w.u64(e.arg0);
        w.u32(e.arg1);
        w.u32(e.cat);
        w.u16(e.code);
        w.u16(e.stream);
    }
    w.u32(mask_);
    w.u64(next_);
    w.u64(emitted_);
    w.u64(filtered_);
}

void
EventTracer::deserialize(ByteReader &r)
{
    const uint64_t n = r.u64();
    if (n != ring_.size())
        sim_throw(SnapshotError,
                  "snapshot trace ring depth %llu does not match the "
                  "tracer's %zu",
                  static_cast<unsigned long long>(n), ring_.size());
    for (TraceEvent &e : ring_) {
        e.ts = r.u64();
        e.arg0 = r.u64();
        e.arg1 = r.u32();
        e.cat = r.u32();
        e.code = r.u16();
        e.stream = r.u16();
        e.pad = 0;
    }
    mask_ = r.u32();
    next_ = r.u64();
    if (next_ >= ring_.size())
        sim_throw(SnapshotError, "snapshot trace ring cursor %zu out of "
                  "range", next_);
    emitted_ = r.u64();
    filtered_ = r.u64();
}

} // namespace upc780::obs
