/**
 * @file
 * Structured event tracing: a ring-buffered, category-filtered stream
 * of timestamped simulator events, exportable in the Chrome
 * `trace_event` JSON format so a whole workload run opens directly in
 * Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Timestamps are machine cycles (one cycle = 200 ns of simulated
 * time); the exporter converts to microseconds of simulated time.
 * Each workload run produces one stream; the parallel engine's
 * per-worker streams are combined with mergeStreams(), which preserves
 * global event totals and per-category timestamp monotonicity — the
 * properties tests/obs_trace_test.cc pins.
 */

#ifndef UPC780_OBS_TRACE_HH
#define UPC780_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.hh"

namespace upc780::obs
{

/** Event categories, one bit each (trace masks are ORs of these). */
enum class Cat : uint32_t
{
    Instr = 1u << 0,  //!< retired instructions (from the InstrTracer)
    Mem = 1u << 1,    //!< memory-system events
    Tb = 1u << 2,     //!< translation-buffer microtraps
    Os = 1u << 3,     //!< context switches, syscalls
    Irq = 1u << 4,    //!< interrupt and machine-check dispatches
    Fault = 1u << 5,  //!< injected faults
    Sim = 1u << 6,    //!< harness markers (measurement start/stop)
};

constexpr uint32_t AllCats = 0x7fu;

std::string_view catName(Cat c);

/**
 * Parse a comma-separated category list ("instr,tb,os") into a mask.
 * @retval false (and mask unchanged) on an unknown name.
 */
bool parseCategories(std::string_view csv, uint32_t &mask);

/** What happened (the `name` field of the exported trace event). */
enum class Code : uint16_t
{
    InstrRetired,
    TbMissD,
    TbMissI,
    CtxSwitch,
    Syscall,
    IrqDispatch,
    MachineCheck,
    FaultInjected,
    MeasureStart,
    MeasureStop,
};

std::string_view codeName(Code c);

/** One trace event: POD, 32 bytes, cheap to ring-buffer. */
struct TraceEvent
{
    uint64_t ts = 0;      //!< machine cycles (200 ns each)
    uint64_t arg0 = 0;
    uint32_t arg1 = 0;
    uint32_t cat = 0;     //!< single Cat bit
    uint16_t code = 0;    //!< Code
    uint16_t stream = 0;  //!< source stream id (set by mergeStreams)
    uint32_t pad = 0;
};

/**
 * Fixed-capacity ring buffer of trace events with a category mask.
 * Oldest events are overwritten once full; `emitted` / `filtered` /
 * `dropped` account for every emit() call, so totals survive both
 * masking and wraparound.
 */
class EventTracer
{
  public:
    explicit EventTracer(size_t depth, uint32_t mask = AllCats);

    void
    emit(Cat c, Code code, uint64_t ts, uint64_t a0 = 0, uint32_t a1 = 0)
    {
        if (!(mask_ & static_cast<uint32_t>(c))) {
            ++filtered_;
            return;
        }
        TraceEvent &e = ring_[next_];
        e.ts = ts;
        e.arg0 = a0;
        e.arg1 = a1;
        e.cat = static_cast<uint32_t>(c);
        e.code = static_cast<uint16_t>(code);
        e.stream = 0;
        next_ = (next_ + 1) % ring_.size();
        ++emitted_;
    }

    /** Events accepted into the ring (including later-overwritten). */
    uint64_t emitted() const { return emitted_; }
    /** Events rejected by the category mask. */
    uint64_t filtered() const { return filtered_; }
    /** Accepted events lost to wraparound. */
    uint64_t
    dropped() const
    {
        return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
    }

    size_t capacity() const { return ring_.size(); }
    uint32_t mask() const { return mask_; }
    void setMask(uint32_t m) { mask_ = m; }

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear();

    /** Checkpoint ring contents + totals (trace.cc). */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    std::vector<TraceEvent> ring_;
    uint32_t mask_ = AllCats;
    size_t next_ = 0;
    uint64_t emitted_ = 0;
    uint64_t filtered_ = 0;
};

/** Emit into the current thread's tracer scope, if any. */
inline void
event(Cat c, Code code, uint64_t ts, uint64_t a0 = 0, uint32_t a1 = 0)
{
    if (EventTracer *t = tracer())
        t->emit(c, code, ts, a0, a1);
}

/**
 * Merge per-worker streams into one globally time-ordered stream.
 * Events keep their relative order within a stream (each stream is
 * already monotone in ts); ties across streams break by stream index,
 * so the merge is deterministic. Every input event appears exactly
 * once in the output, tagged with its stream id.
 */
std::vector<TraceEvent>
mergeStreams(const std::vector<std::vector<TraceEvent>> &streams);

/**
 * Export as a Chrome trace_event JSON document (instant events, one
 * pid per capture, one tid per stream). Load in Perfetto to see each
 * workload's events on its own track.
 */
std::string toChromeJson(const std::vector<TraceEvent> &events);

} // namespace upc780::obs

#endif // UPC780_OBS_TRACE_HH
