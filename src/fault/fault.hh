/**
 * @file
 * Deterministic fault injection for the modeled VAX-11/780.
 *
 * The machines the paper measured were live timesharing systems that
 * routinely rode through correctable memory ECC errors, translation-
 * buffer and control-store parity faults, and SBI timeouts: the
 * machine-check microcode corrected or retried them and VMS logged an
 * error-log entry, with at worst the afflicted process terminated.
 * This module supplies the fault *source*: a seeded, bit-reproducible
 * injector that the timed hardware paths consult —
 *
 *  - main-memory ECC on cache-miss fills (mem/memory.cc),
 *  - SBI transaction timeouts (mem/sbi.cc),
 *  - translation-buffer parity on lookups (mmu/tb.cc),
 *  - control-store parity on microword fetches (cpu/ebox.cc).
 *
 * Faults can be driven by per-access Bernoulli rates, by an explicit
 * deterministic schedule ("the Nth TB lookup fails"), or both. Every
 * injected fault is queued as a pending machine-check code that the
 * machine delivers to the EBOX at the next instruction boundary; the
 * VMS-lite kernel's machine-check handler then logs it and applies the
 * recovery policy (see os/kernel.cc).
 *
 * With no injector attached (the default) every consult site is a null
 * pointer check: measurements are bit-identical to a build without the
 * subsystem.
 */

#ifndef UPC780_FAULT_FAULT_HH
#define UPC780_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "common/random.hh"

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::fault
{

/** The fault classes of the modeled machine. */
enum class FaultKind : uint8_t
{
    MemEccSingle, //!< corrected read data (CRD): ECC fixed a bit
    MemEccDouble, //!< read data substitute (RDS): uncorrectable
    SbiTimeout,   //!< SBI no-response timeout; transaction retried
    TbParity,     //!< TB parity error; entry invalidated and refilled
    CsParity,     //!< control-store parity; microword re-fetched
    NumKinds,
};

constexpr size_t NumFaultKinds = static_cast<size_t>(FaultKind::NumKinds);

/** Short label for reports and error logs. */
std::string_view faultName(FaultKind k);

/** True when hardware/microcode recovery preserves the process. */
constexpr bool
faultCorrectable(FaultKind k)
{
    return k != FaultKind::MemEccDouble;
}

/**
 * Machine-check code encoding: a recognizable magic in the high bits
 * plus the fault kind in the low byte. This is the longword the
 * machine-check microcode pushes onto the exception frame.
 */
constexpr uint32_t McheckCodeBase = 0x780C0000u;

constexpr uint32_t
mcheckCode(FaultKind k)
{
    return McheckCodeBase | static_cast<uint32_t>(k);
}

/** True if @p code carries the machine-check magic. */
constexpr bool
isMcheckCode(uint32_t code)
{
    return (code & 0xFFFF0000u) == McheckCodeBase;
}

/** Fault kind of a machine-check code (caller checks isMcheckCode). */
constexpr FaultKind
mcheckKind(uint32_t code)
{
    return static_cast<FaultKind>(code & 0xFFu);
}

/** One deterministic schedule entry: fire on the Nth access (1-based)
 *  of the kind's access class. */
struct FaultSchedule
{
    FaultKind kind;
    uint64_t access;
};

/**
 * One cycle-scheduled machine check, delivered by the experiment
 * harness at an exact machine cycle (not via an injector consult
 * site). This is the replay-from-snapshot knob: restore a checkpoint
 * taken before `cycle`, vary `cycle` by one, and re-run to compare
 * outcomes of the same fault at adjacent instants. Excluded from the
 * snapshot config hash so one baseline checkpoint serves a whole
 * sweep.
 */
struct CycleInjection
{
    uint64_t cycle = 0;
    FaultKind kind = FaultKind::MemEccSingle;
};

/** Injection configuration. All rates default to zero (no faults). */
struct FaultConfig
{
    uint64_t seed = 0x780FA;
    /** Per miss-fill longword probabilities. */
    double memEccSingleRate = 0.0;
    double memEccDoubleRate = 0.0;
    /** Per SBI transaction. */
    double sbiTimeoutRate = 0.0;
    /** Per TB lookup of a valid entry. */
    double tbParityRate = 0.0;
    /** Per executed microcycle. */
    double csParityRate = 0.0;
    /** Extra bus-stall cycles a timed-out SBI transaction costs. */
    uint32_t sbiTimeoutPenaltyCycles = 64;
    /** Explicit deterministic injections, in addition to the rates. */
    std::vector<FaultSchedule> schedule;

    /**
     * Harness-delivered machine checks at exact cycles (see
     * CycleInjection). These do not require (or perturb) an attached
     * injector and do not count into `any()`.
     */
    std::vector<CycleInjection> cycleInjections;

    /** True when any injector-driven fault source is active. */
    bool any() const;
};

/** Injection counters, by kind. */
struct FaultStats
{
    std::array<uint64_t, NumFaultKinds> injected{};

    uint64_t count(FaultKind k) const
    {
        return injected[static_cast<size_t>(k)];
    }
    uint64_t total() const;
    uint64_t correctable() const;
    uint64_t uncorrectable() const;

    void accumulate(const FaultStats &o);
};

/**
 * The seeded fault source. One injector serves one machine for one
 * run; identical (config, access sequence) pairs reproduce identical
 * fault streams.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config);

    const FaultConfig &config() const { return cfg_; }
    const FaultStats &stats() const { return stats_; }

    /** The machine stamps the current cycle for event records. */
    void setNow(uint64_t now) { now_ = now; }

    // ----- consult sites (called from the timed hardware paths) --------
    /**
     * A cache-miss fill longword was fetched from main memory.
     * @retval true when an ECC event (single- or double-bit) fired.
     */
    bool onMemoryFill(uint32_t pa);

    /**
     * An SBI transaction started.
     * @retval extra occupancy cycles (0: no timeout).
     */
    uint32_t onSbiTransaction();

    /**
     * A valid TB entry was referenced.
     * @retval true when a parity fault fired (caller invalidates it).
     */
    bool onTbLookup();

    /**
     * A microword was fetched for execution.
     * @retval true when a control-store parity fault fired (caller
     *         spends one abort cycle re-fetching it).
     */
    bool onCsFetch();

    // ----- pending machine checks --------------------------------------
    bool mcheckPending() const { return !pending_.empty(); }

    /** Drain the oldest pending machine-check code. */
    uint32_t takeMcheck();

    /** Checkpoint RNG, access counters, stats and pending checks. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    /** Decide whether kind @p k fires on access @p n of its class. */
    bool fires(FaultKind k, uint64_t n, double rate);
    void inject(FaultKind k);

    FaultConfig cfg_;
    upc780::Rng rng_;
    FaultStats stats_;
    uint64_t now_ = 0;

    /** Per-class access counters (memory fills share one class). */
    uint64_t fills_ = 0;
    uint64_t sbiTransactions_ = 0;
    uint64_t tbLookups_ = 0;
    uint64_t csFetches_ = 0;

    std::deque<uint32_t> pending_;
};

} // namespace upc780::fault

#endif // UPC780_FAULT_FAULT_HH
