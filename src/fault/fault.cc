#include "fault/fault.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/serial.hh"

namespace upc780::fault
{

std::string_view
faultName(FaultKind k)
{
    switch (k) {
      case FaultKind::MemEccSingle:
        return "mem-ecc-single";
      case FaultKind::MemEccDouble:
        return "mem-ecc-double";
      case FaultKind::SbiTimeout:
        return "sbi-timeout";
      case FaultKind::TbParity:
        return "tb-parity";
      case FaultKind::CsParity:
        return "cs-parity";
      default:
        return "?";
    }
}

bool
FaultConfig::any() const
{
    return memEccSingleRate > 0 || memEccDoubleRate > 0 ||
           sbiTimeoutRate > 0 || tbParityRate > 0 || csParityRate > 0 ||
           !schedule.empty();
}

uint64_t
FaultStats::total() const
{
    uint64_t t = 0;
    for (uint64_t v : injected)
        t += v;
    return t;
}

uint64_t
FaultStats::correctable() const
{
    uint64_t t = 0;
    for (size_t k = 0; k < NumFaultKinds; ++k)
        if (faultCorrectable(static_cast<FaultKind>(k)))
            t += injected[k];
    return t;
}

uint64_t
FaultStats::uncorrectable() const
{
    return total() - correctable();
}

void
FaultStats::accumulate(const FaultStats &o)
{
    for (size_t k = 0; k < NumFaultKinds; ++k)
        injected[k] += o.injected[k];
}

FaultInjector::FaultInjector(const FaultConfig &config)
    : cfg_(config), rng_(config.seed)
{
    auto bad_rate = [](double r) { return r < 0.0 || r > 1.0; };
    if (bad_rate(cfg_.memEccSingleRate) ||
        bad_rate(cfg_.memEccDoubleRate) ||
        bad_rate(cfg_.sbiTimeoutRate) || bad_rate(cfg_.tbParityRate) ||
        bad_rate(cfg_.csParityRate)) {
        sim_throw(ConfigError, "fault rates must lie in [0, 1]");
    }
    for (const FaultSchedule &s : cfg_.schedule) {
        if (s.access == 0)
            sim_throw(ConfigError,
                      "fault schedule accesses are 1-based; got 0");
    }
}

bool
FaultInjector::fires(FaultKind k, uint64_t n, double rate)
{
    for (const FaultSchedule &s : cfg_.schedule)
        if (s.kind == k && s.access == n)
            return true;
    // No Bernoulli draw at rate 0, so schedule-only configurations
    // consume no randomness and stay reproducible under edits.
    return rate > 0 && rng_.chance(rate);
}

void
FaultInjector::inject(FaultKind k)
{
    ++stats_.injected[static_cast<size_t>(k)];
    pending_.push_back(mcheckCode(k));
}

bool
FaultInjector::onMemoryFill(uint32_t pa)
{
    (void)pa;
    ++fills_;
    // Double-bit (uncorrectable) takes precedence when both fire.
    if (fires(FaultKind::MemEccDouble, fills_, cfg_.memEccDoubleRate)) {
        inject(FaultKind::MemEccDouble);
        return true;
    }
    if (fires(FaultKind::MemEccSingle, fills_, cfg_.memEccSingleRate)) {
        inject(FaultKind::MemEccSingle);
        return true;
    }
    return false;
}

uint32_t
FaultInjector::onSbiTransaction()
{
    ++sbiTransactions_;
    if (fires(FaultKind::SbiTimeout, sbiTransactions_,
              cfg_.sbiTimeoutRate)) {
        inject(FaultKind::SbiTimeout);
        return cfg_.sbiTimeoutPenaltyCycles;
    }
    return 0;
}

bool
FaultInjector::onTbLookup()
{
    ++tbLookups_;
    if (fires(FaultKind::TbParity, tbLookups_, cfg_.tbParityRate)) {
        inject(FaultKind::TbParity);
        return true;
    }
    return false;
}

bool
FaultInjector::onCsFetch()
{
    ++csFetches_;
    if (fires(FaultKind::CsParity, csFetches_, cfg_.csParityRate)) {
        inject(FaultKind::CsParity);
        return true;
    }
    return false;
}

uint32_t
FaultInjector::takeMcheck()
{
    uint32_t code = pending_.front();
    pending_.pop_front();
    return code;
}

void
FaultInjector::serialize(ByteWriter &w) const
{
    for (uint64_t s : rng_.state())
        w.u64(s);
    for (uint64_t v : stats_.injected)
        w.u64(v);
    w.u64(now_);
    w.u64(fills_);
    w.u64(sbiTransactions_);
    w.u64(tbLookups_);
    w.u64(csFetches_);
    w.u32(static_cast<uint32_t>(pending_.size()));
    for (uint32_t c : pending_)
        w.u32(c);
}

void
FaultInjector::deserialize(ByteReader &r)
{
    std::array<uint64_t, 4> s;
    for (uint64_t &v : s)
        v = r.u64();
    rng_.setState(s);
    for (uint64_t &v : stats_.injected)
        v = r.u64();
    now_ = r.u64();
    fills_ = r.u64();
    sbiTransactions_ = r.u64();
    tbLookups_ = r.u64();
    csFetches_ = r.u64();
    pending_.resize(r.size32(1 << 16));
    for (uint32_t &c : pending_)
        c = r.u32();
}

} // namespace upc780::fault
