/**
 * @file
 * Programmatic VAX assembler. Workload generators, examples and tests
 * use this to build real VAX machine code images that the simulated
 * 11/780 executes.
 */

#ifndef UPC780_ARCH_ASSEMBLER_HH
#define UPC780_ARCH_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/opcodes.hh"
#include "arch/specifier.hh"
#include "arch/types.hh"

namespace upc780::arch
{

/** Width selection for displacement addressing modes. */
enum class DispWidth : uint8_t
{
    Auto,  //!< smallest width that holds the displacement
    Byte,
    Word,
    Long,
};

/**
 * One operand as supplied to the assembler. Construct through the
 * named factory functions; optionally wrap with indexed().
 */
class Operand
{
  public:
    /** Short literal S^#v (v in 0..63). */
    static Operand lit(uint8_t v);
    /** Immediate #v, encoded as (PC)+. */
    static Operand imm(uint64_t v);
    /** Register Rn. */
    static Operand reg(unsigned rn);
    /** Register deferred (Rn). */
    static Operand regDef(unsigned rn);
    /** Autoincrement (Rn)+. */
    static Operand autoInc(unsigned rn);
    /** Autoincrement deferred @(Rn)+. */
    static Operand autoIncDef(unsigned rn);
    /** Autodecrement -(Rn). */
    static Operand autoDec(unsigned rn);
    /** Displacement d(Rn). */
    static Operand disp(int32_t d, unsigned rn,
                        DispWidth w = DispWidth::Auto);
    /** Displacement deferred @d(Rn). */
    static Operand dispDef(int32_t d, unsigned rn,
                           DispWidth w = DispWidth::Auto);
    /** Absolute @#addr. */
    static Operand abs(uint32_t addr);

    /**
     * PC-relative reference to a label (encoded as displacement off
     * PC, the way compiled VAX code addresses static data and
     * procedure entry points).
     */
    static Operand rel(struct Label l, DispWidth w = DispWidth::Word);

    /** Return a copy of this operand with an index prefix [Rx]. */
    Operand indexed(unsigned rx) const;

    AddrMode mode() const { return mode_; }
    bool isIndexed() const { return indexed_; }

  private:
    friend class Assembler;
    Operand() = default;

    AddrMode mode_ = AddrMode::Register;
    uint8_t reg_ = 0;
    uint8_t literal_ = 0;
    int32_t disp_ = 0;
    uint64_t imm_ = 0;
    DispWidth width_ = DispWidth::Auto;
    bool indexed_ = false;
    uint8_t indexReg_ = 0;
    uint32_t labelId_ = ~0u;  //!< PC-relative target label, if any
};

/** Opaque label handle for branch targets. */
struct Label
{
    uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

/**
 * Assembles VAX instructions into a byte image at a fixed base virtual
 * address, with label-based branch fixups (byte and word displacements
 * and CASEx displacement tables).
 */
class Assembler
{
  public:
    explicit Assembler(VAddr base) : base_(base) {}

    /** Create a new unbound label. */
    Label newLabel();

    /** Bind a label to the current position. */
    void bind(Label l);

    /** Create a label bound to the current position. */
    Label here();

    /** Current virtual address. */
    VAddr pc() const { return base_ + static_cast<VAddr>(bytes_.size()); }

    VAddr base() const { return base_; }

    /**
     * Emit an instruction. Branch-displacement operands are not part
     * of @p ops; use the overload taking a target Label.
     */
    void emit(Op op, std::initializer_list<Operand> ops);
    void emit(Op op, const std::vector<Operand> &ops);

    /** Emit a branch-format instruction targeting @p target. */
    void emitBr(Op op, Label target);
    void emitBr(Op op, std::initializer_list<Operand> ops, Label target);
    void emitBr(Op op, const std::vector<Operand> &ops, Label target);

    /**
     * Emit a CASEx instruction with its word displacement table.
     * Execution falls through past the table when the selector is out
     * of range.
     */
    void emitCase(Op op, std::initializer_list<Operand> ops,
                  const std::vector<Label> &targets);

    /** Emit raw data. */
    void db(uint8_t v);
    void dw(uint16_t v);
    void dl(uint32_t v);
    void dq(uint64_t v);
    void zero(uint32_t n);

    /** Pad with zero bytes to the given power-of-two alignment. */
    void align(uint32_t alignment);

    /**
     * Resolve all fixups and return the image. fatal() if a label is
     * unbound or a displacement does not fit its field.
     */
    const std::vector<uint8_t> &finish();

    /** Image size so far in bytes. */
    size_t size() const { return bytes_.size(); }

  private:
    struct Fixup
    {
        size_t offset;      //!< byte offset of the displacement field
        uint32_t label;     //!< target label id
        uint8_t width;      //!< 1 or 2 bytes
        VAddr pcAfter;      //!< PC value the displacement is relative to
    };

    void emitOperand(const Operand &o, const OperandSpec &spec);
    void emitInstr(Op op, const std::vector<Operand> &ops,
                   const Label *target);

    VAddr base_;
    std::vector<uint8_t> bytes_;
    std::vector<VAddr> labelAddrs_;       //!< by label id; ~0u unbound
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace upc780::arch

#endif // UPC780_ARCH_ASSEMBLER_HH
