#include "arch/assembler.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace upc780::arch
{

Operand
Operand::lit(uint8_t v)
{
    if (v > 63)
        sim_throw(ConfigError, "short literal %u out of range", v);
    Operand o;
    o.mode_ = AddrMode::Literal;
    o.literal_ = v;
    return o;
}

Operand
Operand::imm(uint64_t v)
{
    Operand o;
    o.mode_ = AddrMode::Immediate;
    o.imm_ = v;
    return o;
}

Operand
Operand::reg(unsigned rn)
{
    Operand o;
    o.mode_ = AddrMode::Register;
    o.reg_ = static_cast<uint8_t>(rn);
    return o;
}

Operand
Operand::regDef(unsigned rn)
{
    Operand o;
    o.mode_ = AddrMode::RegDeferred;
    o.reg_ = static_cast<uint8_t>(rn);
    return o;
}

Operand
Operand::autoInc(unsigned rn)
{
    Operand o;
    o.mode_ = AddrMode::AutoIncr;
    o.reg_ = static_cast<uint8_t>(rn);
    return o;
}

Operand
Operand::autoIncDef(unsigned rn)
{
    Operand o;
    o.mode_ = AddrMode::AutoIncrDeferred;
    o.reg_ = static_cast<uint8_t>(rn);
    return o;
}

Operand
Operand::autoDec(unsigned rn)
{
    Operand o;
    o.mode_ = AddrMode::AutoDecr;
    o.reg_ = static_cast<uint8_t>(rn);
    return o;
}

Operand
Operand::disp(int32_t d, unsigned rn, DispWidth w)
{
    Operand o;
    o.mode_ = AddrMode::DispByte;  // width resolved at emit time
    o.reg_ = static_cast<uint8_t>(rn);
    o.disp_ = d;
    o.width_ = w;
    return o;
}

Operand
Operand::dispDef(int32_t d, unsigned rn, DispWidth w)
{
    Operand o = disp(d, rn, w);
    o.mode_ = AddrMode::DispByteDeferred;
    return o;
}

Operand
Operand::abs(uint32_t addr)
{
    Operand o;
    o.mode_ = AddrMode::Absolute;
    o.imm_ = addr;
    return o;
}

Operand
Operand::rel(Label l, DispWidth w)
{
    if (w == DispWidth::Auto)
        w = DispWidth::Word;
    Operand o;
    o.mode_ = AddrMode::DispByte;  // displacement family, reg = PC
    o.reg_ = static_cast<uint8_t>(reg::PC);
    o.width_ = w;
    o.labelId_ = l.id;
    return o;
}

Operand
Operand::indexed(unsigned rx) const
{
    if (mode_ == AddrMode::Literal || mode_ == AddrMode::Register ||
        mode_ == AddrMode::Immediate) {
        sim_throw(ConfigError, "addressing mode cannot be indexed");
    }
    Operand o = *this;
    o.indexed_ = true;
    o.indexReg_ = static_cast<uint8_t>(rx);
    return o;
}

Label
Assembler::newLabel()
{
    Label l{static_cast<uint32_t>(labelAddrs_.size())};
    labelAddrs_.push_back(~0u);
    return l;
}

void
Assembler::bind(Label l)
{
    if (!l.valid() || l.id >= labelAddrs_.size())
        panic("bind of invalid label");
    if (labelAddrs_[l.id] != ~0u)
        panic("label bound twice");
    labelAddrs_[l.id] = pc();
}

Label
Assembler::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
Assembler::db(uint8_t v)
{
    bytes_.push_back(v);
}

void
Assembler::dw(uint16_t v)
{
    db(static_cast<uint8_t>(v));
    db(static_cast<uint8_t>(v >> 8));
}

void
Assembler::dl(uint32_t v)
{
    dw(static_cast<uint16_t>(v));
    dw(static_cast<uint16_t>(v >> 16));
}

void
Assembler::dq(uint64_t v)
{
    dl(static_cast<uint32_t>(v));
    dl(static_cast<uint32_t>(v >> 32));
}

void
Assembler::zero(uint32_t n)
{
    bytes_.insert(bytes_.end(), n, 0);
}

void
Assembler::align(uint32_t alignment)
{
    while (pc() & (alignment - 1))
        db(0);
}

void
Assembler::emitOperand(const Operand &o, const OperandSpec &spec)
{
    if (isBranchDisp(spec.access))
        panic("branch displacement passed as ordinary operand");

    if (o.indexed_)
        db(static_cast<uint8_t>(0x40 | (o.indexReg_ & 0xf)));

    AddrMode m = o.mode_;

    // PC-relative label reference: emit a fixed-width displacement
    // field and record a fixup against the label.
    if (o.labelId_ != ~0u) {
        uint8_t width = o.width_ == DispWidth::Byte
                            ? 1
                            : (o.width_ == DispWidth::Long ? 4 : 2);
        uint8_t mode_bits;
        switch (width) {
          case 1:
            mode_bits = 0xA0;
            break;
          case 2:
            mode_bits = 0xC0;
            break;
          default:
            mode_bits = 0xE0;
            break;
        }
        db(static_cast<uint8_t>(mode_bits | reg::PC));
        Fixup f;
        f.offset = bytes_.size();
        f.label = o.labelId_;
        f.width = width;
        f.pcAfter = pc() + width;
        fixups_.push_back(f);
        for (unsigned i = 0; i < width; ++i)
            db(0);
        return;
    }

    // Resolve displacement width.
    if (m == AddrMode::DispByte || m == AddrMode::DispByteDeferred) {
        bool deferred = (m == AddrMode::DispByteDeferred);
        DispWidth w = o.width_;
        if (w == DispWidth::Auto) {
            if (o.disp_ >= -128 && o.disp_ <= 127)
                w = DispWidth::Byte;
            else if (o.disp_ >= -32768 && o.disp_ <= 32767)
                w = DispWidth::Word;
            else
                w = DispWidth::Long;
        }
        switch (w) {
          case DispWidth::Byte:
            if (o.disp_ < -128 || o.disp_ > 127)
                sim_throw(ConfigError, "byte displacement %d out of range", o.disp_);
            db(static_cast<uint8_t>((deferred ? 0xB0 : 0xA0) | o.reg_));
            db(static_cast<uint8_t>(o.disp_));
            break;
          case DispWidth::Word:
            if (o.disp_ < -32768 || o.disp_ > 32767)
                sim_throw(ConfigError, "word displacement %d out of range", o.disp_);
            db(static_cast<uint8_t>((deferred ? 0xD0 : 0xC0) | o.reg_));
            dw(static_cast<uint16_t>(o.disp_));
            break;
          default:
            db(static_cast<uint8_t>((deferred ? 0xF0 : 0xE0) | o.reg_));
            dl(static_cast<uint32_t>(o.disp_));
            break;
        }
        return;
    }

    switch (m) {
      case AddrMode::Literal:
        db(o.literal_ & 0x3f);
        break;
      case AddrMode::Register:
        db(static_cast<uint8_t>(0x50 | o.reg_));
        break;
      case AddrMode::RegDeferred:
        db(static_cast<uint8_t>(0x60 | o.reg_));
        break;
      case AddrMode::AutoDecr:
        db(static_cast<uint8_t>(0x70 | o.reg_));
        break;
      case AddrMode::AutoIncr:
        if (o.reg_ == reg::PC)
            sim_throw(ConfigError, "autoincrement of PC: use Operand::imm");
        db(static_cast<uint8_t>(0x80 | o.reg_));
        break;
      case AddrMode::Immediate: {
        db(0x8F);
        uint32_t n = dataTypeSize(spec.type);
        for (uint32_t i = 0; i < n; ++i)
            db(static_cast<uint8_t>(o.imm_ >> (8 * i)));
        break;
      }
      case AddrMode::AutoIncrDeferred:
        if (o.reg_ == reg::PC)
            sim_throw(ConfigError, "autoincrement-deferred of PC: use Operand::abs");
        db(static_cast<uint8_t>(0x90 | o.reg_));
        break;
      case AddrMode::Absolute:
        db(0x9F);
        dl(static_cast<uint32_t>(o.imm_));
        break;
      default:
        panic("unreachable operand mode");
    }
}

void
Assembler::emitInstr(Op op, const std::vector<Operand> &ops,
                     const Label *target)
{
    const OpcodeInfo &info = opcodeInfo(op);
    if (!info.valid())
        panic("emit of undefined opcode 0x%02x",
              static_cast<unsigned>(op));

    unsigned ndata = 0;
    bool has_branch = false;
    uint8_t branch_width = 0;
    for (const OperandSpec &s : info.specs()) {
        if (isBranchDisp(s.access)) {
            has_branch = true;
            branch_width = (s.access == Access::BranchB) ? 1 : 2;
        } else {
            ++ndata;
        }
    }
    if (ops.size() != ndata)
        sim_throw(ConfigError, "%.*s expects %u data operands, got %zu",
              int(info.mnemonic.size()), info.mnemonic.data(), ndata,
              ops.size());
    if (has_branch != (target != nullptr))
        sim_throw(ConfigError, "%.*s branch-target mismatch",
              int(info.mnemonic.size()), info.mnemonic.data());

    db(static_cast<uint8_t>(op));
    size_t oi = 0;
    for (const OperandSpec &s : info.specs()) {
        if (isBranchDisp(s.access))
            continue;
        emitOperand(ops[oi++], s);
    }
    if (has_branch) {
        Fixup f;
        f.offset = bytes_.size();
        f.label = target->id;
        f.width = branch_width;
        f.pcAfter = pc() + branch_width;
        fixups_.push_back(f);
        for (unsigned i = 0; i < branch_width; ++i)
            db(0);
    }
}

void
Assembler::emit(Op op, std::initializer_list<Operand> ops)
{
    emitInstr(op, std::vector<Operand>(ops), nullptr);
}

void
Assembler::emit(Op op, const std::vector<Operand> &ops)
{
    emitInstr(op, ops, nullptr);
}

void
Assembler::emitBr(Op op, Label target)
{
    emitInstr(op, {}, &target);
}

void
Assembler::emitBr(Op op, std::initializer_list<Operand> ops, Label target)
{
    emitInstr(op, std::vector<Operand>(ops), &target);
}

void
Assembler::emitBr(Op op, const std::vector<Operand> &ops, Label target)
{
    emitInstr(op, ops, &target);
}

void
Assembler::emitCase(Op op, std::initializer_list<Operand> ops,
                    const std::vector<Label> &targets)
{
    const OpcodeInfo &info = opcodeInfo(op);
    if (info.pcClass != PcClass::Case)
        panic("emitCase on non-CASE opcode");
    if (targets.empty())
        sim_throw(ConfigError, "CASE with empty displacement table");

    emitInstr(op, std::vector<Operand>(ops), nullptr);

    // The displacement table follows the specifiers. Displacements
    // are relative to the table's own address.
    VAddr table_base = pc();
    for (const Label &l : targets) {
        Fixup f;
        f.offset = bytes_.size();
        f.label = l.id;
        f.width = 2;
        f.pcAfter = table_base;
        fixups_.push_back(f);
        dw(0);
    }
}

const std::vector<uint8_t> &
Assembler::finish()
{
    if (finished_)
        return bytes_;
    for (const Fixup &f : fixups_) {
        if (f.label >= labelAddrs_.size() || labelAddrs_[f.label] == ~0u)
            sim_throw(ConfigError, "unbound label %u in assembly", f.label);
        int64_t delta = static_cast<int64_t>(labelAddrs_[f.label]) -
                        static_cast<int64_t>(f.pcAfter);
        if (f.width == 1) {
            if (delta < -128 || delta > 127)
                sim_throw(ConfigError, "byte branch displacement %lld out of range",
                      static_cast<long long>(delta));
            bytes_[f.offset] = static_cast<uint8_t>(delta);
        } else if (f.width == 2) {
            if (delta < -32768 || delta > 32767)
                sim_throw(ConfigError, "word branch displacement %lld out of range",
                      static_cast<long long>(delta));
            bytes_[f.offset] = static_cast<uint8_t>(delta);
            bytes_[f.offset + 1] = static_cast<uint8_t>(delta >> 8);
        } else {
            for (unsigned i = 0; i < 4; ++i)
                bytes_[f.offset + i] =
                    static_cast<uint8_t>(delta >> (8 * i));
        }
    }
    finished_ = true;
    return bytes_;
}

} // namespace upc780::arch
