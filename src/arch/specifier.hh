/**
 * @file
 * VAX operand-specifier addressing modes: encoding, decoding, and the
 * paper's Table 4 mode classification.
 */

#ifndef UPC780_ARCH_SPECIFIER_HH
#define UPC780_ARCH_SPECIFIER_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "arch/types.hh"

namespace upc780::arch
{

/**
 * Resolved addressing mode of one operand specifier, after splitting
 * the PC-specific variants (immediate, absolute, PC-relative) out of
 * the raw 4-bit mode field.
 */
enum class AddrMode : uint8_t
{
    Literal,           //!< modes 0-3: 6-bit short literal
    Register,          //!< mode 5: Rn
    RegDeferred,       //!< mode 6: (Rn)
    AutoDecr,          //!< mode 7: -(Rn)
    AutoIncr,          //!< mode 8, Rn != PC: (Rn)+
    Immediate,         //!< mode 8, Rn == PC: #imm == (PC)+
    AutoIncrDeferred,  //!< mode 9, Rn != PC: @(Rn)+
    Absolute,          //!< mode 9, Rn == PC: @#addr
    DispByte,          //!< mode A: b^d(Rn)
    DispByteDeferred,  //!< mode B: @b^d(Rn)
    DispWord,          //!< mode C: w^d(Rn)
    DispWordDeferred,  //!< mode D: @w^d(Rn)
    DispLong,          //!< mode E: l^d(Rn)
    DispLongDeferred,  //!< mode F: @l^d(Rn)
};

/** Mnemonic-ish name for an addressing mode. */
std::string_view addrModeName(AddrMode m);

/** The paper's Table 4 row categories. */
enum class SpecClass : uint8_t
{
    Register,
    ShortLiteral,
    Immediate,
    Displacement,      //!< byte/word/long displacement off a register
    RegDeferred,
    AutoIncrement,
    AutoDecrement,
    DispDeferred,
    Absolute,
    AutoIncDeferred,
    NumClasses,
};

/** Table 4 row label. */
std::string_view specClassName(SpecClass c);

/**
 * Classify an addressing mode into a Table 4 row. PC-relative modes
 * (displacement off PC) classify as Displacement / DispDeferred, as
 * in the paper.
 */
SpecClass classifySpec(AddrMode m);

/** True if the mode makes a D-stream memory reference for its operand. */
bool specReferencesMemory(AddrMode m);

/** One fully decoded operand specifier. */
struct DecodedSpecifier
{
    AddrMode mode = AddrMode::Register;
    uint8_t reg = 0;        //!< base register (or literal high bits)
    bool indexed = false;   //!< preceded by an index-prefix byte
    uint8_t indexReg = 0;   //!< Rx of the index prefix, if indexed
    uint8_t literal = 0;    //!< 6-bit short literal value
    int32_t disp = 0;       //!< displacement, sign-extended
    uint64_t immediate = 0; //!< immediate data (up to 8 bytes)
    uint8_t length = 0;     //!< total encoded bytes, incl. index prefix

    /** Render in VAX assembler notation (for the disassembler). */
    std::string str() const;
};

/**
 * Decode one operand specifier from a byte stream.
 *
 * @param bytes input bytes starting at the specifier
 * @param type data type of the operand (sets immediate size)
 * @param out decoded result
 * @retval number of bytes consumed, or 0 if bytes are exhausted or the
 *         encoding is invalid (e.g. index prefix on a literal).
 */
uint32_t decodeSpecifier(std::span<const uint8_t> bytes, DataType type,
                         DecodedSpecifier &out);

} // namespace upc780::arch

#endif // UPC780_ARCH_SPECIFIER_HH
