/**
 * @file
 * The VAX opcode table: mnemonics, encodings, operand descriptors,
 * the paper's Table 1 opcode groups, and the paper's Table 2
 * PC-changing classification.
 */

#ifndef UPC780_ARCH_OPCODES_HH
#define UPC780_ARCH_OPCODES_HH

#include <cstdint>
#include <span>
#include <string_view>

#include "arch/types.hh"

namespace upc780::arch
{

/**
 * VAX opcodes, valued by their single-byte encoding. This is the
 * single-byte subset (no 0xFD two-byte extended opcodes), which covers
 * every instruction the paper's workloads exercise.
 */
enum class Op : uint8_t
{
    // --- system / privileged / queue ------------------------------------
    HALT = 0x00, NOP = 0x01, REI = 0x02, BPT = 0x03,
    RET = 0x04, RSB = 0x05, LDPCTX = 0x06, SVPCTX = 0x07,
    CVTPS = 0x08, CVTSP = 0x09, INDEX = 0x0A, CRC = 0x0B,
    PROBER = 0x0C, PROBEW = 0x0D, INSQUE = 0x0E, REMQUE = 0x0F,

    // --- branches -------------------------------------------------------
    BSBB = 0x10, BRB = 0x11, BNEQ = 0x12, BEQL = 0x13,
    BGTR = 0x14, BLEQ = 0x15, JSB = 0x16, JMP = 0x17,
    BGEQ = 0x18, BLSS = 0x19, BGTRU = 0x1A, BLEQU = 0x1B,
    BVC = 0x1C, BVS = 0x1D, BCC = 0x1E, BCS = 0x1F,

    // --- decimal string -------------------------------------------------
    ADDP4 = 0x20, ADDP6 = 0x21, SUBP4 = 0x22, SUBP6 = 0x23,
    CVTPT = 0x24, MULP = 0x25, CVTTP = 0x26, DIVP = 0x27,

    // --- character string -----------------------------------------------
    MOVC3 = 0x28, CMPC3 = 0x29, SCANC = 0x2A, SPANC = 0x2B,
    MOVC5 = 0x2C, CMPC5 = 0x2D, MOVTC = 0x2E, MOVTUC = 0x2F,

    BSBW = 0x30, BRW = 0x31, CVTWL = 0x32, CVTWB = 0x33,

    MOVP = 0x34, CMPP3 = 0x35, CVTPL = 0x36, CMPP4 = 0x37,
    EDITPC = 0x38, MATCHC = 0x39, LOCC = 0x3A, SKPC = 0x3B,

    MOVZWL = 0x3C, ACBW = 0x3D, MOVAW = 0x3E, PUSHAW = 0x3F,

    // --- F_floating -----------------------------------------------------
    ADDF2 = 0x40, ADDF3 = 0x41, SUBF2 = 0x42, SUBF3 = 0x43,
    MULF2 = 0x44, MULF3 = 0x45, DIVF2 = 0x46, DIVF3 = 0x47,
    CVTFB = 0x48, CVTFW = 0x49, CVTFL = 0x4A, CVTRFL = 0x4B,
    CVTBF = 0x4C, CVTWF = 0x4D, CVTLF = 0x4E, ACBF = 0x4F,
    MOVF = 0x50, CMPF = 0x51, MNEGF = 0x52, TSTF = 0x53,
    EMODF = 0x54, POLYF = 0x55, CVTFD = 0x56,

    ADAWI = 0x58,

    // --- D_floating -----------------------------------------------------
    ADDD2 = 0x60, ADDD3 = 0x61, SUBD2 = 0x62, SUBD3 = 0x63,
    MULD2 = 0x64, MULD3 = 0x65, DIVD2 = 0x66, DIVD3 = 0x67,
    CVTDB = 0x68, CVTDW = 0x69, CVTDL = 0x6A, CVTRDL = 0x6B,
    CVTBD = 0x6C, CVTWD = 0x6D, CVTLD = 0x6E, ACBD = 0x6F,
    MOVD = 0x70, CMPD = 0x71, MNEGD = 0x72, TSTD = 0x73,
    EMODD = 0x74, POLYD = 0x75, CVTDF = 0x76,

    ASHL = 0x78, ASHQ = 0x79, EMUL = 0x7A, EDIV = 0x7B,
    CLRQ = 0x7C, MOVQ = 0x7D, MOVAQ = 0x7E, PUSHAQ = 0x7F,

    // --- byte integer ---------------------------------------------------
    ADDB2 = 0x80, ADDB3 = 0x81, SUBB2 = 0x82, SUBB3 = 0x83,
    MULB2 = 0x84, MULB3 = 0x85, DIVB2 = 0x86, DIVB3 = 0x87,
    BISB2 = 0x88, BISB3 = 0x89, BICB2 = 0x8A, BICB3 = 0x8B,
    XORB2 = 0x8C, XORB3 = 0x8D, MNEGB = 0x8E, CASEB = 0x8F,
    MOVB = 0x90, CMPB = 0x91, MCOMB = 0x92, BITB = 0x93,
    CLRB = 0x94, TSTB = 0x95, INCB = 0x96, DECB = 0x97,
    CVTBL = 0x98, CVTBW = 0x99, MOVZBL = 0x9A, MOVZBW = 0x9B,
    ROTL = 0x9C, ACBB = 0x9D, MOVAB = 0x9E, PUSHAB = 0x9F,

    // --- word integer ---------------------------------------------------
    ADDW2 = 0xA0, ADDW3 = 0xA1, SUBW2 = 0xA2, SUBW3 = 0xA3,
    MULW2 = 0xA4, MULW3 = 0xA5, DIVW2 = 0xA6, DIVW3 = 0xA7,
    BISW2 = 0xA8, BISW3 = 0xA9, BICW2 = 0xAA, BICW3 = 0xAB,
    XORW2 = 0xAC, XORW3 = 0xAD, MNEGW = 0xAE, CASEW = 0xAF,
    MOVW = 0xB0, CMPW = 0xB1, MCOMW = 0xB2, BITW = 0xB3,
    CLRW = 0xB4, TSTW = 0xB5, INCW = 0xB6, DECW = 0xB7,
    BISPSW = 0xB8, BICPSW = 0xB9, POPR = 0xBA, PUSHR = 0xBB,
    CHMK = 0xBC, CHME = 0xBD, CHMS = 0xBE, CHMU = 0xBF,

    // --- longword integer -----------------------------------------------
    ADDL2 = 0xC0, ADDL3 = 0xC1, SUBL2 = 0xC2, SUBL3 = 0xC3,
    MULL2 = 0xC4, MULL3 = 0xC5, DIVL2 = 0xC6, DIVL3 = 0xC7,
    BISL2 = 0xC8, BISL3 = 0xC9, BICL2 = 0xCA, BICL3 = 0xCB,
    XORL2 = 0xCC, XORL3 = 0xCD, MNEGL = 0xCE, CASEL = 0xCF,
    MOVL = 0xD0, CMPL = 0xD1, MCOML = 0xD2, BITL = 0xD3,
    CLRL = 0xD4, TSTL = 0xD5, INCL = 0xD6, DECL = 0xD7,
    ADWC = 0xD8, SBWC = 0xD9, MTPR = 0xDA, MFPR = 0xDB,
    MOVPSL = 0xDC, PUSHL = 0xDD, MOVAL = 0xDE, PUSHAL = 0xDF,

    // --- bit field and bit branch ----------------------------------------
    BBS = 0xE0, BBC = 0xE1, BBSS = 0xE2, BBCS = 0xE3,
    BBSC = 0xE4, BBCC = 0xE5, BBSSI = 0xE6, BBCCI = 0xE7,
    BLBS = 0xE8, BLBC = 0xE9,
    FFS = 0xEA, FFC = 0xEB, CMPV = 0xEC, CMPZV = 0xED,
    EXTV = 0xEE, EXTZV = 0xEF, INSV = 0xF0,

    // --- loop / indexed branches ----------------------------------------
    ACBL = 0xF1, AOBLSS = 0xF2, AOBLEQ = 0xF3,
    SOBGEQ = 0xF4, SOBGTR = 0xF5,

    CVTLB = 0xF6, CVTLW = 0xF7, ASHP = 0xF8, CVTLP = 0xF9,

    // --- procedure call -------------------------------------------------
    CALLG = 0xFA, CALLS = 0xFB, XFC = 0xFC,
};

/** The paper's Table 1 opcode groups. */
enum class Group : uint8_t
{
    Simple,     //!< moves, simple arith/boolean, branches, subr call
    Field,      //!< bit field operations and bit branches
    Float,      //!< floating point plus integer multiply/divide
    CallRet,    //!< procedure call/return, multi-register push/pop
    System,     //!< privileged, context switch, queue, probe, sys serv
    Character,  //!< character string instructions
    Decimal,    //!< decimal string instructions
    NumGroups,
};

/** Human-readable group name as printed in Table 1. */
std::string_view groupName(Group g);

/**
 * The paper's Table 2 classification of PC-changing instructions.
 * Per the paper, BRB and BRW are grouped with the simple conditional
 * branches because the 780 microcode shares their dispatch.
 */
enum class PcClass : uint8_t
{
    None,        //!< not a PC-changing instruction
    SimpleCond,  //!< simple conditional branches plus BRB, BRW
    Loop,        //!< AOBxxx, SOBxxx, ACBx
    LowBit,      //!< BLBS, BLBC
    Subroutine,  //!< BSBB, BSBW, JSB, RSB
    Uncond,      //!< JMP
    Case,        //!< CASEB/W/L
    BitBranch,   //!< BBx and variants
    Procedure,   //!< CALLG, CALLS, RET
    SystemBr,    //!< REI, CHMx
    NumClasses,
};

/** Table 2 row label for a PC-changing class. */
std::string_view pcClassName(PcClass c);

/** One operand slot of an instruction descriptor. */
struct OperandSpec
{
    Access access;
    DataType type;
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    std::string_view mnemonic;  //!< empty for unassigned encodings
    Group group;
    PcClass pcClass;
    uint8_t numOperands;
    OperandSpec operands[6];

    bool valid() const { return !mnemonic.empty(); }

    std::span<const OperandSpec>
    specs() const
    {
        return {operands, numOperands};
    }
};

/** Look up the descriptor for an opcode byte. */
const OpcodeInfo &opcodeInfo(uint8_t opcode);

inline const OpcodeInfo &
opcodeInfo(Op op)
{
    return opcodeInfo(static_cast<uint8_t>(op));
}

/** True if the byte encodes a defined instruction in this model. */
inline bool
opcodeValid(uint8_t opcode)
{
    return opcodeInfo(opcode).valid();
}

} // namespace upc780::arch

#endif // UPC780_ARCH_OPCODES_HH
