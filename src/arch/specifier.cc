#include "arch/specifier.hh"

#include <cstdio>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace upc780::arch
{

std::string_view
addrModeName(AddrMode m)
{
    switch (m) {
      case AddrMode::Literal:
        return "S^#lit";
      case AddrMode::Register:
        return "Rn";
      case AddrMode::RegDeferred:
        return "(Rn)";
      case AddrMode::AutoDecr:
        return "-(Rn)";
      case AddrMode::AutoIncr:
        return "(Rn)+";
      case AddrMode::Immediate:
        return "#imm";
      case AddrMode::AutoIncrDeferred:
        return "@(Rn)+";
      case AddrMode::Absolute:
        return "@#abs";
      case AddrMode::DispByte:
        return "b^d(Rn)";
      case AddrMode::DispByteDeferred:
        return "@b^d(Rn)";
      case AddrMode::DispWord:
        return "w^d(Rn)";
      case AddrMode::DispWordDeferred:
        return "@w^d(Rn)";
      case AddrMode::DispLong:
        return "l^d(Rn)";
      case AddrMode::DispLongDeferred:
        return "@l^d(Rn)";
    }
    return "?";
}

std::string_view
specClassName(SpecClass c)
{
    switch (c) {
      case SpecClass::Register:
        return "Register Rn";
      case SpecClass::ShortLiteral:
        return "Short literal S^#";
      case SpecClass::Immediate:
        return "Immediate (PC)+";
      case SpecClass::Displacement:
        return "Displacement d(Rn)";
      case SpecClass::RegDeferred:
        return "Register deferred (Rn)";
      case SpecClass::AutoIncrement:
        return "Autoincrement (Rn)+";
      case SpecClass::AutoDecrement:
        return "Autodecrement -(Rn)";
      case SpecClass::DispDeferred:
        return "Disp. deferred @d(Rn)";
      case SpecClass::Absolute:
        return "Absolute @#";
      case SpecClass::AutoIncDeferred:
        return "Autoinc. deferred @(Rn)+";
      default:
        return "?";
    }
}

SpecClass
classifySpec(AddrMode m)
{
    switch (m) {
      case AddrMode::Literal:
        return SpecClass::ShortLiteral;
      case AddrMode::Register:
        return SpecClass::Register;
      case AddrMode::RegDeferred:
        return SpecClass::RegDeferred;
      case AddrMode::AutoDecr:
        return SpecClass::AutoDecrement;
      case AddrMode::AutoIncr:
        return SpecClass::AutoIncrement;
      case AddrMode::Immediate:
        return SpecClass::Immediate;
      case AddrMode::AutoIncrDeferred:
        return SpecClass::AutoIncDeferred;
      case AddrMode::Absolute:
        return SpecClass::Absolute;
      case AddrMode::DispByte:
      case AddrMode::DispWord:
      case AddrMode::DispLong:
        return SpecClass::Displacement;
      case AddrMode::DispByteDeferred:
      case AddrMode::DispWordDeferred:
      case AddrMode::DispLongDeferred:
        return SpecClass::DispDeferred;
    }
    return SpecClass::Register;
}

bool
specReferencesMemory(AddrMode m)
{
    switch (m) {
      case AddrMode::Literal:
      case AddrMode::Register:
      case AddrMode::Immediate:
        return false;
      default:
        return true;
    }
}

std::string
DecodedSpecifier::str() const
{
    char buf[64];
    std::string s;
    switch (mode) {
      case AddrMode::Literal:
        std::snprintf(buf, sizeof(buf), "S^#%u", literal);
        s = buf;
        break;
      case AddrMode::Register:
        std::snprintf(buf, sizeof(buf), "r%u", reg);
        s = buf;
        break;
      case AddrMode::RegDeferred:
        std::snprintf(buf, sizeof(buf), "(r%u)", reg);
        s = buf;
        break;
      case AddrMode::AutoDecr:
        std::snprintf(buf, sizeof(buf), "-(r%u)", reg);
        s = buf;
        break;
      case AddrMode::AutoIncr:
        std::snprintf(buf, sizeof(buf), "(r%u)+", reg);
        s = buf;
        break;
      case AddrMode::Immediate:
        std::snprintf(buf, sizeof(buf), "#0x%llx",
                      static_cast<unsigned long long>(immediate));
        s = buf;
        break;
      case AddrMode::AutoIncrDeferred:
        std::snprintf(buf, sizeof(buf), "@(r%u)+", reg);
        s = buf;
        break;
      case AddrMode::Absolute:
        std::snprintf(buf, sizeof(buf), "@#0x%x",
                      static_cast<uint32_t>(immediate));
        s = buf;
        break;
      case AddrMode::DispByte:
      case AddrMode::DispWord:
      case AddrMode::DispLong:
        std::snprintf(buf, sizeof(buf), "%d(r%u)", disp, reg);
        s = buf;
        break;
      case AddrMode::DispByteDeferred:
      case AddrMode::DispWordDeferred:
      case AddrMode::DispLongDeferred:
        std::snprintf(buf, sizeof(buf), "@%d(r%u)", disp, reg);
        s = buf;
        break;
    }
    if (indexed) {
        std::snprintf(buf, sizeof(buf), "[r%u]", indexReg);
        s += buf;
    }
    return s;
}

namespace
{

/** Read a little-endian value of @p n bytes (n <= 8). */
uint64_t
readLe(std::span<const uint8_t> b, uint32_t off, uint32_t n)
{
    uint64_t v = 0;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(b[off + i]) << (8 * i);
    return v;
}

} // namespace

uint32_t
decodeSpecifier(std::span<const uint8_t> bytes, DataType type,
                DecodedSpecifier &out)
{
    out = DecodedSpecifier{};
    if (bytes.empty())
        return 0;

    uint32_t pos = 0;
    uint8_t sb = bytes[pos++];
    uint8_t mode = sb >> 4;
    uint8_t rn = sb & 0xf;

    if (mode == 4) {
        // Index prefix: [Rx] followed by a base specifier.
        out.indexed = true;
        out.indexReg = rn;
        if (pos >= bytes.size())
            return 0;
        sb = bytes[pos++];
        mode = sb >> 4;
        rn = sb & 0xf;
        // Literal, register and immediate base modes are illegal after
        // an index prefix, as is a second index prefix.
        if (mode < 6 || (mode == 8 && rn == reg::PC))
            return 0;
    }

    out.reg = rn;
    switch (mode) {
      case 0:
      case 1:
      case 2:
      case 3:
        out.mode = AddrMode::Literal;
        out.literal = sb & 0x3f;
        break;
      case 5:
        out.mode = AddrMode::Register;
        break;
      case 6:
        out.mode = AddrMode::RegDeferred;
        break;
      case 7:
        out.mode = AddrMode::AutoDecr;
        break;
      case 8:
        if (rn == reg::PC) {
            out.mode = AddrMode::Immediate;
            uint32_t n = dataTypeSize(type);
            if (pos + n > bytes.size())
                return 0;
            out.immediate = readLe(bytes, pos, n);
            pos += n;
        } else {
            out.mode = AddrMode::AutoIncr;
        }
        break;
      case 9:
        if (rn == reg::PC) {
            out.mode = AddrMode::Absolute;
            if (pos + 4 > bytes.size())
                return 0;
            out.immediate = readLe(bytes, pos, 4);
            pos += 4;
        } else {
            out.mode = AddrMode::AutoIncrDeferred;
        }
        break;
      case 0xA:
      case 0xB:
      case 0xC:
      case 0xD:
      case 0xE:
      case 0xF: {
        static const AddrMode modes[6] = {
            AddrMode::DispByte, AddrMode::DispByteDeferred,
            AddrMode::DispWord, AddrMode::DispWordDeferred,
            AddrMode::DispLong, AddrMode::DispLongDeferred,
        };
        out.mode = modes[mode - 0xA];
        uint32_t n = 1u << ((mode - 0xA) / 2);
        if (pos + n > bytes.size())
            return 0;
        uint64_t raw = readLe(bytes, pos, n);
        pos += n;
        out.disp = sext(static_cast<uint32_t>(raw),
                        static_cast<int>(8 * n));
        break;
      }
      default:
        return 0;
    }

    out.length = static_cast<uint8_t>(pos);
    return pos;
}

} // namespace upc780::arch
