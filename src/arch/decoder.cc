#include "arch/decoder.hh"

#include <cstdio>

#include "common/bitfield.hh"

namespace upc780::arch
{

uint32_t
decodeInstruction(std::span<const uint8_t> bytes, DecodedInst &out)
{
    out = DecodedInst{};
    if (bytes.empty())
        return 0;

    out.opcode = bytes[0];
    const OpcodeInfo &info = opcodeInfo(out.opcode);
    if (!info.valid())
        return 0;
    out.info = &info;

    uint32_t pos = 1;
    for (const OperandSpec &s : info.specs()) {
        if (isBranchDisp(s.access)) {
            uint32_t n = (s.access == Access::BranchB) ? 1 : 2;
            if (pos + n > bytes.size())
                return 0;
            uint32_t raw = bytes[pos];
            if (n == 2)
                raw |= static_cast<uint32_t>(bytes[pos + 1]) << 8;
            out.branchDisp = sext(raw, static_cast<int>(8 * n));
            out.branchDispSize = static_cast<uint8_t>(n);
            out.hasBranchDisp = true;
            pos += n;
        } else {
            DecodedSpecifier spec;
            uint32_t n = decodeSpecifier(bytes.subspan(pos), s.type,
                                         spec);
            if (n == 0)
                return 0;
            out.specs[out.numSpecs++] = spec;
            pos += n;
        }
    }
    out.length = pos;
    return pos;
}

std::string
DecodedInst::str() const
{
    if (!info)
        return "(invalid)";
    std::string s(info->mnemonic);
    bool first = true;
    for (unsigned i = 0; i < numSpecs; ++i) {
        s += first ? " " : ", ";
        s += specs[i].str();
        first = false;
    }
    if (hasBranchDisp) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+d", branchDisp);
        s += first ? " " : ", ";
        s += buf;
    }
    return s;
}

} // namespace upc780::arch
