/**
 * @file
 * Fundamental VAX architecture types: data types, operand access
 * classes, register names, and the processor status longword.
 */

#ifndef UPC780_ARCH_TYPES_HH
#define UPC780_ARCH_TYPES_HH

#include <cstdint>

namespace upc780::arch
{

/** Virtual and physical addresses are 32 bits on the VAX. */
using VAddr = uint32_t;
using PAddr = uint32_t;

/** Operand data types defined by the VAX architecture. */
enum class DataType : uint8_t
{
    Byte,    //!< 8-bit integer
    Word,    //!< 16-bit integer
    Long,    //!< 32-bit integer
    Quad,    //!< 64-bit integer
    FFloat,  //!< 32-bit F_floating
    DFloat,  //!< 64-bit D_floating
};

/** Size in bytes of a data type. */
constexpr uint32_t
dataTypeSize(DataType t)
{
    switch (t) {
      case DataType::Byte:
        return 1;
      case DataType::Word:
        return 2;
      case DataType::Long:
      case DataType::FFloat:
        return 4;
      case DataType::Quad:
      case DataType::DFloat:
        return 8;
    }
    return 4;
}

/** Single-character suffix used by the disassembler. */
constexpr char
dataTypeSuffix(DataType t)
{
    switch (t) {
      case DataType::Byte:
        return 'b';
      case DataType::Word:
        return 'w';
      case DataType::Long:
        return 'l';
      case DataType::Quad:
        return 'q';
      case DataType::FFloat:
        return 'f';
      case DataType::DFloat:
        return 'd';
    }
    return '?';
}

/**
 * Operand access classes from the VAX Architecture Reference Manual
 * operand-specifier notation.
 */
enum class Access : uint8_t
{
    Read,     //!< .r - operand is read
    Write,    //!< .w - operand is written
    Modify,   //!< .m - operand is read then written
    Address,  //!< .a - address of operand is computed (no data access)
    Field,    //!< .v - variable-length bit field base (reg or address)
    BranchB,  //!< .bb - byte branch displacement in the I-stream
    BranchW,  //!< .bw - word branch displacement in the I-stream
};

/** True if the access class is an I-stream branch displacement. */
constexpr bool
isBranchDisp(Access a)
{
    return a == Access::BranchB || a == Access::BranchW;
}

/** General purpose register numbers with architectural roles. */
namespace reg
{
constexpr unsigned R0 = 0;
constexpr unsigned R1 = 1;
constexpr unsigned R2 = 2;
constexpr unsigned R3 = 3;
constexpr unsigned R4 = 4;
constexpr unsigned R5 = 5;
constexpr unsigned R6 = 6;
constexpr unsigned R7 = 7;
constexpr unsigned R8 = 8;
constexpr unsigned R9 = 9;
constexpr unsigned R10 = 10;
constexpr unsigned R11 = 11;
constexpr unsigned AP = 12;   //!< argument pointer
constexpr unsigned FP = 13;   //!< frame pointer
constexpr unsigned SP = 14;   //!< stack pointer
constexpr unsigned PC = 15;   //!< program counter
constexpr unsigned NumRegs = 16;
} // namespace reg

/** Processor status longword condition-code and control bits. */
namespace psl
{
constexpr uint32_t C = 1u << 0;   //!< carry
constexpr uint32_t V = 1u << 1;   //!< overflow
constexpr uint32_t Z = 1u << 2;   //!< zero
constexpr uint32_t N = 1u << 3;   //!< negative
constexpr uint32_t T = 1u << 4;   //!< trace
constexpr uint32_t IS = 1u << 26; //!< interrupt stack
constexpr uint32_t CurModeShift = 24;  //!< current mode field (2 bits)
constexpr uint32_t IplShift = 16;      //!< interrupt priority (5 bits)

constexpr uint32_t CcMask = N | Z | V | C;
} // namespace psl

/** Processor access modes (PSL current-mode field values). */
enum class Mode : uint8_t
{
    Kernel = 0,
    Executive = 1,
    Supervisor = 2,
    User = 3,
};

} // namespace upc780::arch

#endif // UPC780_ARCH_TYPES_HH
