#include "arch/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace upc780::arch
{

namespace
{

// Shorthand operand-spec constants, named <access><type> after the
// VAX Architecture Reference Manual notation (e.g. rl = read.long).
constexpr OperandSpec rb{Access::Read, DataType::Byte};
constexpr OperandSpec rw{Access::Read, DataType::Word};
constexpr OperandSpec rl{Access::Read, DataType::Long};
constexpr OperandSpec rq{Access::Read, DataType::Quad};
constexpr OperandSpec rf{Access::Read, DataType::FFloat};
constexpr OperandSpec rd{Access::Read, DataType::DFloat};
constexpr OperandSpec wb{Access::Write, DataType::Byte};
constexpr OperandSpec ww{Access::Write, DataType::Word};
constexpr OperandSpec wl{Access::Write, DataType::Long};
constexpr OperandSpec wq{Access::Write, DataType::Quad};
constexpr OperandSpec wf{Access::Write, DataType::FFloat};
constexpr OperandSpec wd{Access::Write, DataType::DFloat};
constexpr OperandSpec mb{Access::Modify, DataType::Byte};
constexpr OperandSpec mw{Access::Modify, DataType::Word};
constexpr OperandSpec ml{Access::Modify, DataType::Long};
constexpr OperandSpec mf{Access::Modify, DataType::FFloat};
constexpr OperandSpec md{Access::Modify, DataType::DFloat};
constexpr OperandSpec ab{Access::Address, DataType::Byte};
constexpr OperandSpec aw{Access::Address, DataType::Word};
constexpr OperandSpec al{Access::Address, DataType::Long};
constexpr OperandSpec aq{Access::Address, DataType::Quad};
constexpr OperandSpec vb{Access::Field, DataType::Byte};
constexpr OperandSpec bb{Access::BranchB, DataType::Byte};
constexpr OperandSpec bw{Access::BranchW, DataType::Word};

struct Table
{
    std::array<OpcodeInfo, 256> info{};

    void
    def(Op op, std::string_view mnem, Group g, PcClass pc,
        std::initializer_list<OperandSpec> ops)
    {
        OpcodeInfo &e = info[static_cast<uint8_t>(op)];
        if (e.valid())
            panic("duplicate opcode definition 0x%02x",
                  static_cast<unsigned>(op));
        e.mnemonic = mnem;
        e.group = g;
        e.pcClass = pc;
        e.numOperands = 0;
        for (const OperandSpec &s : ops) {
            if (e.numOperands >= 6)
                panic("too many operands for %.*s",
                      int(mnem.size()), mnem.data());
            e.operands[e.numOperands++] = s;
        }
    }
};

Table
buildTable()
{
    Table t;
    const auto S = Group::Simple;
    const auto FI = Group::Field;
    const auto FL = Group::Float;
    const auto CR = Group::CallRet;
    const auto SY = Group::System;
    const auto CH = Group::Character;
    const auto DE = Group::Decimal;
    const auto NP = PcClass::None;

    // System / privileged / queue ------------------------------------
    t.def(Op::HALT, "halt", SY, NP, {});
    t.def(Op::NOP, "nop", S, NP, {});
    t.def(Op::REI, "rei", SY, PcClass::SystemBr, {});
    t.def(Op::BPT, "bpt", SY, PcClass::SystemBr, {});
    t.def(Op::RET, "ret", CR, PcClass::Procedure, {});
    t.def(Op::RSB, "rsb", S, PcClass::Subroutine, {});
    t.def(Op::LDPCTX, "ldpctx", SY, NP, {});
    t.def(Op::SVPCTX, "svpctx", SY, NP, {});
    t.def(Op::CVTPS, "cvtps", DE, NP, {rw, ab, rw, ab});
    t.def(Op::CVTSP, "cvtsp", DE, NP, {rw, ab, rw, ab});
    t.def(Op::INDEX, "index", S, NP, {rl, rl, rl, rl, rl, wl});
    t.def(Op::CRC, "crc", CH, NP, {ab, rl, rw, ab});
    t.def(Op::PROBER, "prober", SY, NP, {rb, rw, ab});
    t.def(Op::PROBEW, "probew", SY, NP, {rb, rw, ab});
    t.def(Op::INSQUE, "insque", SY, NP, {ab, ab});
    t.def(Op::REMQUE, "remque", SY, NP, {ab, wl});

    // Branches ---------------------------------------------------------
    t.def(Op::BSBB, "bsbb", S, PcClass::Subroutine, {bb});
    t.def(Op::BRB, "brb", S, PcClass::SimpleCond, {bb});
    t.def(Op::BNEQ, "bneq", S, PcClass::SimpleCond, {bb});
    t.def(Op::BEQL, "beql", S, PcClass::SimpleCond, {bb});
    t.def(Op::BGTR, "bgtr", S, PcClass::SimpleCond, {bb});
    t.def(Op::BLEQ, "bleq", S, PcClass::SimpleCond, {bb});
    t.def(Op::JSB, "jsb", S, PcClass::Subroutine, {ab});
    t.def(Op::JMP, "jmp", S, PcClass::Uncond, {ab});
    t.def(Op::BGEQ, "bgeq", S, PcClass::SimpleCond, {bb});
    t.def(Op::BLSS, "blss", S, PcClass::SimpleCond, {bb});
    t.def(Op::BGTRU, "bgtru", S, PcClass::SimpleCond, {bb});
    t.def(Op::BLEQU, "blequ", S, PcClass::SimpleCond, {bb});
    t.def(Op::BVC, "bvc", S, PcClass::SimpleCond, {bb});
    t.def(Op::BVS, "bvs", S, PcClass::SimpleCond, {bb});
    t.def(Op::BCC, "bcc", S, PcClass::SimpleCond, {bb});
    t.def(Op::BCS, "bcs", S, PcClass::SimpleCond, {bb});
    t.def(Op::BSBW, "bsbw", S, PcClass::Subroutine, {bw});
    t.def(Op::BRW, "brw", S, PcClass::SimpleCond, {bw});

    // Decimal string -----------------------------------------------------
    t.def(Op::ADDP4, "addp4", DE, NP, {rw, ab, rw, ab});
    t.def(Op::ADDP6, "addp6", DE, NP, {rw, ab, rw, ab, rw, ab});
    t.def(Op::SUBP4, "subp4", DE, NP, {rw, ab, rw, ab});
    t.def(Op::SUBP6, "subp6", DE, NP, {rw, ab, rw, ab, rw, ab});
    t.def(Op::CVTPT, "cvtpt", DE, NP, {rw, ab, ab, rw, ab});
    t.def(Op::MULP, "mulp", DE, NP, {rw, ab, rw, ab, rw, ab});
    t.def(Op::CVTTP, "cvttp", DE, NP, {rw, ab, ab, rw, ab});
    t.def(Op::DIVP, "divp", DE, NP, {rw, ab, rw, ab, rw, ab});
    t.def(Op::MOVP, "movp", DE, NP, {rw, ab, ab});
    t.def(Op::CMPP3, "cmpp3", DE, NP, {rw, ab, ab});
    t.def(Op::CVTPL, "cvtpl", DE, NP, {rw, ab, wl});
    t.def(Op::CMPP4, "cmpp4", DE, NP, {rw, ab, rw, ab});
    t.def(Op::EDITPC, "editpc", DE, NP, {rw, ab, ab, ab});
    t.def(Op::ASHP, "ashp", DE, NP, {rb, rw, ab, rb, rw, ab});
    t.def(Op::CVTLP, "cvtlp", DE, NP, {rl, rw, ab});

    // Character string ---------------------------------------------------
    t.def(Op::MOVC3, "movc3", CH, NP, {rw, ab, ab});
    t.def(Op::CMPC3, "cmpc3", CH, NP, {rw, ab, ab});
    t.def(Op::SCANC, "scanc", CH, NP, {rw, ab, ab, rb});
    t.def(Op::SPANC, "spanc", CH, NP, {rw, ab, ab, rb});
    t.def(Op::MOVC5, "movc5", CH, NP, {rw, ab, rb, rw, ab});
    t.def(Op::CMPC5, "cmpc5", CH, NP, {rw, ab, rb, rw, ab});
    t.def(Op::MOVTC, "movtc", CH, NP, {rw, ab, rb, ab, rw, ab});
    t.def(Op::MOVTUC, "movtuc", CH, NP, {rw, ab, rb, ab, rw, ab});
    t.def(Op::MATCHC, "matchc", CH, NP, {rw, ab, rw, ab});
    t.def(Op::LOCC, "locc", CH, NP, {rb, rw, ab});
    t.def(Op::SKPC, "skpc", CH, NP, {rb, rw, ab});

    // Integer converts / word moves ---------------------------------------
    t.def(Op::CVTWL, "cvtwl", S, NP, {rw, wl});
    t.def(Op::CVTWB, "cvtwb", S, NP, {rw, wb});
    t.def(Op::MOVZWL, "movzwl", S, NP, {rw, wl});
    t.def(Op::ACBW, "acbw", S, PcClass::Loop, {rw, rw, mw, bw});
    t.def(Op::MOVAW, "movaw", S, NP, {aw, wl});
    t.def(Op::PUSHAW, "pushaw", S, NP, {aw});

    // F_floating -----------------------------------------------------------
    t.def(Op::ADDF2, "addf2", FL, NP, {rf, mf});
    t.def(Op::ADDF3, "addf3", FL, NP, {rf, rf, wf});
    t.def(Op::SUBF2, "subf2", FL, NP, {rf, mf});
    t.def(Op::SUBF3, "subf3", FL, NP, {rf, rf, wf});
    t.def(Op::MULF2, "mulf2", FL, NP, {rf, mf});
    t.def(Op::MULF3, "mulf3", FL, NP, {rf, rf, wf});
    t.def(Op::DIVF2, "divf2", FL, NP, {rf, mf});
    t.def(Op::DIVF3, "divf3", FL, NP, {rf, rf, wf});
    t.def(Op::CVTFB, "cvtfb", FL, NP, {rf, wb});
    t.def(Op::CVTFW, "cvtfw", FL, NP, {rf, ww});
    t.def(Op::CVTFL, "cvtfl", FL, NP, {rf, wl});
    t.def(Op::CVTRFL, "cvtrfl", FL, NP, {rf, wl});
    t.def(Op::CVTBF, "cvtbf", FL, NP, {rb, wf});
    t.def(Op::CVTWF, "cvtwf", FL, NP, {rw, wf});
    t.def(Op::CVTLF, "cvtlf", FL, NP, {rl, wf});
    t.def(Op::ACBF, "acbf", FL, PcClass::Loop, {rf, rf, mf, bw});
    t.def(Op::MOVF, "movf", FL, NP, {rf, wf});
    t.def(Op::CMPF, "cmpf", FL, NP, {rf, rf});
    t.def(Op::MNEGF, "mnegf", FL, NP, {rf, wf});
    t.def(Op::TSTF, "tstf", FL, NP, {rf});
    t.def(Op::EMODF, "emodf", FL, NP, {rf, rb, rf, wl, wf});
    t.def(Op::POLYF, "polyf", FL, NP, {rf, rw, ab});
    t.def(Op::CVTFD, "cvtfd", FL, NP, {rf, wd});
    t.def(Op::ADAWI, "adawi", S, NP, {rw, mw});

    // D_floating -----------------------------------------------------------
    t.def(Op::ADDD2, "addd2", FL, NP, {rd, md});
    t.def(Op::ADDD3, "addd3", FL, NP, {rd, rd, wd});
    t.def(Op::SUBD2, "subd2", FL, NP, {rd, md});
    t.def(Op::SUBD3, "subd3", FL, NP, {rd, rd, wd});
    t.def(Op::MULD2, "muld2", FL, NP, {rd, md});
    t.def(Op::MULD3, "muld3", FL, NP, {rd, rd, wd});
    t.def(Op::DIVD2, "divd2", FL, NP, {rd, md});
    t.def(Op::DIVD3, "divd3", FL, NP, {rd, rd, wd});
    t.def(Op::CVTDB, "cvtdb", FL, NP, {rd, wb});
    t.def(Op::CVTDW, "cvtdw", FL, NP, {rd, ww});
    t.def(Op::CVTDL, "cvtdl", FL, NP, {rd, wl});
    t.def(Op::CVTRDL, "cvtrdl", FL, NP, {rd, wl});
    t.def(Op::CVTBD, "cvtbd", FL, NP, {rb, wd});
    t.def(Op::CVTWD, "cvtwd", FL, NP, {rw, wd});
    t.def(Op::CVTLD, "cvtld", FL, NP, {rl, wd});
    t.def(Op::ACBD, "acbd", FL, PcClass::Loop, {rd, rd, md, bw});
    t.def(Op::MOVD, "movd", FL, NP, {rd, wd});
    t.def(Op::CMPD, "cmpd", FL, NP, {rd, rd});
    t.def(Op::MNEGD, "mnegd", FL, NP, {rd, wd});
    t.def(Op::TSTD, "tstd", FL, NP, {rd});
    t.def(Op::EMODD, "emodd", FL, NP, {rd, rb, rd, wl, wd});
    t.def(Op::POLYD, "polyd", FL, NP, {rd, rw, ab});
    t.def(Op::CVTDF, "cvtdf", FL, NP, {rd, wf});

    // Shifts / extended integer multiply-divide ----------------------------
    t.def(Op::ASHL, "ashl", S, NP, {rb, rl, wl});
    t.def(Op::ASHQ, "ashq", S, NP, {rb, rq, wq});
    t.def(Op::EMUL, "emul", FL, NP, {rl, rl, rl, wq});
    t.def(Op::EDIV, "ediv", FL, NP, {rl, rq, wl, wl});
    t.def(Op::CLRQ, "clrq", S, NP, {wq});
    t.def(Op::MOVQ, "movq", S, NP, {rq, wq});
    t.def(Op::MOVAQ, "movaq", S, NP, {aq, wl});
    t.def(Op::PUSHAQ, "pushaq", S, NP, {aq});

    // Byte integer ----------------------------------------------------------
    t.def(Op::ADDB2, "addb2", S, NP, {rb, mb});
    t.def(Op::ADDB3, "addb3", S, NP, {rb, rb, wb});
    t.def(Op::SUBB2, "subb2", S, NP, {rb, mb});
    t.def(Op::SUBB3, "subb3", S, NP, {rb, rb, wb});
    t.def(Op::MULB2, "mulb2", FL, NP, {rb, mb});
    t.def(Op::MULB3, "mulb3", FL, NP, {rb, rb, wb});
    t.def(Op::DIVB2, "divb2", FL, NP, {rb, mb});
    t.def(Op::DIVB3, "divb3", FL, NP, {rb, rb, wb});
    t.def(Op::BISB2, "bisb2", S, NP, {rb, mb});
    t.def(Op::BISB3, "bisb3", S, NP, {rb, rb, wb});
    t.def(Op::BICB2, "bicb2", S, NP, {rb, mb});
    t.def(Op::BICB3, "bicb3", S, NP, {rb, rb, wb});
    t.def(Op::XORB2, "xorb2", S, NP, {rb, mb});
    t.def(Op::XORB3, "xorb3", S, NP, {rb, rb, wb});
    t.def(Op::MNEGB, "mnegb", S, NP, {rb, wb});
    t.def(Op::CASEB, "caseb", S, PcClass::Case, {rb, rb, rb});
    t.def(Op::MOVB, "movb", S, NP, {rb, wb});
    t.def(Op::CMPB, "cmpb", S, NP, {rb, rb});
    t.def(Op::MCOMB, "mcomb", S, NP, {rb, wb});
    t.def(Op::BITB, "bitb", S, NP, {rb, rb});
    t.def(Op::CLRB, "clrb", S, NP, {wb});
    t.def(Op::TSTB, "tstb", S, NP, {rb});
    t.def(Op::INCB, "incb", S, NP, {mb});
    t.def(Op::DECB, "decb", S, NP, {mb});
    t.def(Op::CVTBL, "cvtbl", S, NP, {rb, wl});
    t.def(Op::CVTBW, "cvtbw", S, NP, {rb, ww});
    t.def(Op::MOVZBL, "movzbl", S, NP, {rb, wl});
    t.def(Op::MOVZBW, "movzbw", S, NP, {rb, ww});
    t.def(Op::ROTL, "rotl", S, NP, {rb, rl, wl});
    t.def(Op::ACBB, "acbb", S, PcClass::Loop, {rb, rb, mb, bw});
    t.def(Op::MOVAB, "movab", S, NP, {ab, wl});
    t.def(Op::PUSHAB, "pushab", S, NP, {ab});

    // Word integer -----------------------------------------------------------
    t.def(Op::ADDW2, "addw2", S, NP, {rw, mw});
    t.def(Op::ADDW3, "addw3", S, NP, {rw, rw, ww});
    t.def(Op::SUBW2, "subw2", S, NP, {rw, mw});
    t.def(Op::SUBW3, "subw3", S, NP, {rw, rw, ww});
    t.def(Op::MULW2, "mulw2", FL, NP, {rw, mw});
    t.def(Op::MULW3, "mulw3", FL, NP, {rw, rw, ww});
    t.def(Op::DIVW2, "divw2", FL, NP, {rw, mw});
    t.def(Op::DIVW3, "divw3", FL, NP, {rw, rw, ww});
    t.def(Op::BISW2, "bisw2", S, NP, {rw, mw});
    t.def(Op::BISW3, "bisw3", S, NP, {rw, rw, ww});
    t.def(Op::BICW2, "bicw2", S, NP, {rw, mw});
    t.def(Op::BICW3, "bicw3", S, NP, {rw, rw, ww});
    t.def(Op::XORW2, "xorw2", S, NP, {rw, mw});
    t.def(Op::XORW3, "xorw3", S, NP, {rw, rw, ww});
    t.def(Op::MNEGW, "mnegw", S, NP, {rw, ww});
    t.def(Op::CASEW, "casew", S, PcClass::Case, {rw, rw, rw});
    t.def(Op::MOVW, "movw", S, NP, {rw, ww});
    t.def(Op::CMPW, "cmpw", S, NP, {rw, rw});
    t.def(Op::MCOMW, "mcomw", S, NP, {rw, ww});
    t.def(Op::BITW, "bitw", S, NP, {rw, rw});
    t.def(Op::CLRW, "clrw", S, NP, {ww});
    t.def(Op::TSTW, "tstw", S, NP, {rw});
    t.def(Op::INCW, "incw", S, NP, {mw});
    t.def(Op::DECW, "decw", S, NP, {mw});
    t.def(Op::BISPSW, "bispsw", S, NP, {rw});
    t.def(Op::BICPSW, "bicpsw", S, NP, {rw});
    t.def(Op::POPR, "popr", CR, NP, {rw});
    t.def(Op::PUSHR, "pushr", CR, NP, {rw});
    t.def(Op::CHMK, "chmk", SY, PcClass::SystemBr, {rw});
    t.def(Op::CHME, "chme", SY, PcClass::SystemBr, {rw});
    t.def(Op::CHMS, "chms", SY, PcClass::SystemBr, {rw});
    t.def(Op::CHMU, "chmu", SY, PcClass::SystemBr, {rw});

    // Longword integer ---------------------------------------------------------
    t.def(Op::ADDL2, "addl2", S, NP, {rl, ml});
    t.def(Op::ADDL3, "addl3", S, NP, {rl, rl, wl});
    t.def(Op::SUBL2, "subl2", S, NP, {rl, ml});
    t.def(Op::SUBL3, "subl3", S, NP, {rl, rl, wl});
    t.def(Op::MULL2, "mull2", FL, NP, {rl, ml});
    t.def(Op::MULL3, "mull3", FL, NP, {rl, rl, wl});
    t.def(Op::DIVL2, "divl2", FL, NP, {rl, ml});
    t.def(Op::DIVL3, "divl3", FL, NP, {rl, rl, wl});
    t.def(Op::BISL2, "bisl2", S, NP, {rl, ml});
    t.def(Op::BISL3, "bisl3", S, NP, {rl, rl, wl});
    t.def(Op::BICL2, "bicl2", S, NP, {rl, ml});
    t.def(Op::BICL3, "bicl3", S, NP, {rl, rl, wl});
    t.def(Op::XORL2, "xorl2", S, NP, {rl, ml});
    t.def(Op::XORL3, "xorl3", S, NP, {rl, rl, wl});
    t.def(Op::MNEGL, "mnegl", S, NP, {rl, wl});
    t.def(Op::CASEL, "casel", S, PcClass::Case, {rl, rl, rl});
    t.def(Op::MOVL, "movl", S, NP, {rl, wl});
    t.def(Op::CMPL, "cmpl", S, NP, {rl, rl});
    t.def(Op::MCOML, "mcoml", S, NP, {rl, wl});
    t.def(Op::BITL, "bitl", S, NP, {rl, rl});
    t.def(Op::CLRL, "clrl", S, NP, {wl});
    t.def(Op::TSTL, "tstl", S, NP, {rl});
    t.def(Op::INCL, "incl", S, NP, {ml});
    t.def(Op::DECL, "decl", S, NP, {ml});
    t.def(Op::ADWC, "adwc", S, NP, {rl, ml});
    t.def(Op::SBWC, "sbwc", S, NP, {rl, ml});
    t.def(Op::MTPR, "mtpr", SY, NP, {rl, rl});
    t.def(Op::MFPR, "mfpr", SY, NP, {rl, wl});
    t.def(Op::MOVPSL, "movpsl", S, NP, {wl});
    t.def(Op::PUSHL, "pushl", S, NP, {rl});
    t.def(Op::MOVAL, "moval", S, NP, {al, wl});
    t.def(Op::PUSHAL, "pushal", S, NP, {al});

    // Bit field / bit branch ----------------------------------------------------
    t.def(Op::BBS, "bbs", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBC, "bbc", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBSS, "bbss", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBCS, "bbcs", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBSC, "bbsc", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBCC, "bbcc", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBSSI, "bbssi", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BBCCI, "bbcci", FI, PcClass::BitBranch, {rl, vb, bb});
    t.def(Op::BLBS, "blbs", S, PcClass::LowBit, {rl, bb});
    t.def(Op::BLBC, "blbc", S, PcClass::LowBit, {rl, bb});
    t.def(Op::FFS, "ffs", FI, NP, {rl, rb, vb, wl});
    t.def(Op::FFC, "ffc", FI, NP, {rl, rb, vb, wl});
    t.def(Op::CMPV, "cmpv", FI, NP, {rl, rb, vb, rl});
    t.def(Op::CMPZV, "cmpzv", FI, NP, {rl, rb, vb, rl});
    t.def(Op::EXTV, "extv", FI, NP, {rl, rb, vb, wl});
    t.def(Op::EXTZV, "extzv", FI, NP, {rl, rb, vb, wl});
    t.def(Op::INSV, "insv", FI, NP, {rl, rl, rb, vb});

    // Loop branches / converts -----------------------------------------------
    t.def(Op::ACBL, "acbl", S, PcClass::Loop, {rl, rl, ml, bw});
    t.def(Op::AOBLSS, "aoblss", S, PcClass::Loop, {rl, ml, bb});
    t.def(Op::AOBLEQ, "aobleq", S, PcClass::Loop, {rl, ml, bb});
    t.def(Op::SOBGEQ, "sobgeq", S, PcClass::Loop, {ml, bb});
    t.def(Op::SOBGTR, "sobgtr", S, PcClass::Loop, {ml, bb});
    t.def(Op::CVTLB, "cvtlb", S, NP, {rl, wb});
    t.def(Op::CVTLW, "cvtlw", S, NP, {rl, ww});

    // Procedure call --------------------------------------------------------
    t.def(Op::CALLG, "callg", CR, PcClass::Procedure, {ab, ab});
    t.def(Op::CALLS, "calls", CR, PcClass::Procedure, {rl, ab});
    t.def(Op::XFC, "xfc", SY, NP, {});

    return t;
}

const Table &
table()
{
    static const Table t = buildTable();
    return t;
}

} // namespace

const OpcodeInfo &
opcodeInfo(uint8_t opcode)
{
    return table().info[opcode];
}

std::string_view
groupName(Group g)
{
    switch (g) {
      case Group::Simple:
        return "SIMPLE";
      case Group::Field:
        return "FIELD";
      case Group::Float:
        return "FLOAT";
      case Group::CallRet:
        return "CALL/RET";
      case Group::System:
        return "SYSTEM";
      case Group::Character:
        return "CHARACTER";
      case Group::Decimal:
        return "DECIMAL";
      default:
        return "?";
    }
}

std::string_view
pcClassName(PcClass c)
{
    switch (c) {
      case PcClass::None:
        return "(none)";
      case PcClass::SimpleCond:
        return "Simple cond. plus BRB, BRW";
      case PcClass::Loop:
        return "Loop branches";
      case PcClass::LowBit:
        return "Low-bit tests";
      case PcClass::Subroutine:
        return "Subroutine call and return";
      case PcClass::Uncond:
        return "Unconditional (JMP)";
      case PcClass::Case:
        return "Case branch (CASEx)";
      case PcClass::BitBranch:
        return "Bit branches";
      case PcClass::Procedure:
        return "Procedure call and return";
      case PcClass::SystemBr:
        return "System branches";
      default:
        return "?";
    }
}

} // namespace upc780::arch
