/**
 * @file
 * Architectural instruction decoder and disassembler. The IBox uses
 * the per-specifier decode from specifier.hh incrementally; this whole-
 * instruction decoder serves the assembler round-trip tests, the
 * disassembler, and workload validation.
 */

#ifndef UPC780_ARCH_DECODER_HH
#define UPC780_ARCH_DECODER_HH

#include <cstdint>
#include <span>
#include <string>

#include "arch/opcodes.hh"
#include "arch/specifier.hh"

namespace upc780::arch
{

/** A fully decoded VAX instruction (excluding any CASE table). */
struct DecodedInst
{
    uint8_t opcode = 0;
    const OpcodeInfo *info = nullptr;
    DecodedSpecifier specs[6];
    uint8_t numSpecs = 0;          //!< data operand specifiers decoded
    bool hasBranchDisp = false;
    int32_t branchDisp = 0;
    uint8_t branchDispSize = 0;    //!< 1 or 2 bytes
    uint32_t length = 0;           //!< total bytes incl. branch disp

    /** Render in VAX assembler notation. */
    std::string str() const;
};

/**
 * Decode one instruction starting at bytes[0].
 *
 * @retval bytes consumed, or 0 on truncated stream / invalid opcode /
 *         invalid specifier encoding.
 */
uint32_t decodeInstruction(std::span<const uint8_t> bytes,
                           DecodedInst &out);

} // namespace upc780::arch

#endif // UPC780_ARCH_DECODER_HH
