#include "upc/monitor.hh"

#include "common/serial.hh"
#include "obs/counters.hh"

namespace upc780::upc
{

void
UpcMonitor::cycle(ucode::UAddr upc, bool stalled)
{
    if (!running_)
        return;
    ++observed_;
    // The board's own view of the measurement window, counted into the
    // obs fabric: upc.cycles must equal the histogram's bucket sum (the
    // cycle-accounting audit) and upc.stall_cycles its stall total.
    obs::count(obs::Ev::UpcCycles);
    if (stalled) {
        histogram_.bumpStall(upc);
        obs::count(obs::Ev::UpcStallCycles);
    } else {
        histogram_.bumpCount(upc);
    }
}

void
UpcMonitor::writeCsr(uint16_t v)
{
    if (v & static_cast<uint16_t>(Csr::Clear))
        clear();
    running_ = v & static_cast<uint16_t>(Csr::Go);
}

uint16_t
UpcMonitor::readCsr() const
{
    return running_ ? static_cast<uint16_t>(Csr::Go) : 0;
}

uint64_t
UpcMonitor::readDataPort(bool stall_bank) const
{
    ucode::UAddr a = static_cast<ucode::UAddr>(
        addrPort_ % Histogram::NumBuckets);
    return stall_bank ? histogram_.stall(a) : histogram_.count(a);
}

void
UpcMonitor::serialize(ByteWriter &w) const
{
    histogram_.serialize(w);
    w.b(running_);
    w.u64(observed_);
    w.u16(addrPort_);
}

void
UpcMonitor::deserialize(ByteReader &r)
{
    histogram_.deserialize(r);
    running_ = r.b();
    observed_ = r.u64();
    addrPort_ = r.u16();
}

} // namespace upc780::upc
