#include "upc/monitor.hh"

namespace upc780::upc
{

void
UpcMonitor::writeCsr(uint16_t v)
{
    if (v & static_cast<uint16_t>(Csr::Clear))
        clear();
    running_ = v & static_cast<uint16_t>(Csr::Go);
}

uint16_t
UpcMonitor::readCsr() const
{
    return running_ ? static_cast<uint16_t>(Csr::Go) : 0;
}

uint64_t
UpcMonitor::readDataPort(bool stall_bank) const
{
    ucode::UAddr a = static_cast<ucode::UAddr>(
        addrPort_ % Histogram::NumBuckets);
    return stall_bank ? histogram_.stall(a) : histogram_.count(a);
}

} // namespace upc780::upc
