/**
 * @file
 * The raw micro-PC histogram: one bucket per control-store location,
 * each with two counters — executions and read/write-stalled cycles —
 * exactly the data the paper's hardware board collected (§2.2, §4.3).
 */

#ifndef UPC780_UPC_HISTOGRAM_HH
#define UPC780_UPC_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <string>

#include "ucode/uop.hh"

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::upc
{

using ucode::UAddr;

/** The histogram memory of the UPC board. */
class Histogram
{
  public:
    static constexpr uint32_t NumBuckets = ucode::ControlStoreSize;

    void
    clear()
    {
        counts_.fill(0);
        stalls_.fill(0);
    }

    void bumpCount(UAddr a) { ++counts_[a]; }
    void bumpStall(UAddr a) { ++stalls_[a]; }

    uint64_t count(UAddr a) const { return counts_[a]; }
    uint64_t stall(UAddr a) const { return stalls_[a]; }

    /** Sum of all execution counts. */
    uint64_t totalCounts() const;

    /** Sum of all stalled-cycle counts. */
    uint64_t totalStalls() const;

    /** Total cycles observed (executions + stalls). */
    uint64_t totalCycles() const { return totalCounts() + totalStalls(); }

    /**
     * Merge another board's memory into this one, bucket-wise — the
     * paper's composite construction (§2.2: five experiments' UPC
     * histograms summed). Because every bucket is an independent
     * unsigned add, merge is associative and commutative: the parallel
     * experiment engine relies on this to guarantee that a composite
     * assembled from worker threads in any completion order is
     * bit-identical to the serial run.
     */
    void merge(const Histogram &other);

    /** Historical name for @ref merge. */
    void accumulate(const Histogram &other) { merge(other); }

    /** Exact bucket-wise equality (determinism tests). */
    bool operator==(const Histogram &other) const = default;

    /**
     * Save to / load from a simple text format ("addr count stalls"
     * per nonzero bucket) — the offline data-reduction workflow of the
     * paper, where the board was read out and analyzed later.
     * @retval false on I/O or format errors.
     */
    bool saveTo(const std::string &path) const;
    bool loadFrom(const std::string &path);

    /**
     * Checkpoint the histogram memory, sparsely: only nonzero buckets
     * are written (addr, count, stalls), since most of the 16 K
     * control store is never executed by a given workload.
     */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    std::array<uint64_t, NumBuckets> counts_{};
    std::array<uint64_t, NumBuckets> stalls_{};
};

} // namespace upc780::upc

#endif // UPC780_UPC_HISTOGRAM_HH
