#include "upc/report.hh"

#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "arch/opcodes.hh"
#include "common/table.hh"
#include "ucode/controlstore.hh"

namespace upc780::upc
{

namespace
{

std::string
num(double v, int prec = 3)
{
    return TextTable::num(v, prec);
}

double
dbl(uint64_t v)
{
    return static_cast<double>(v);
}

/** Minimal markdown table emitter. */
class MdTable
{
  public:
    explicit MdTable(std::ostringstream &os) : os_(os) {}

    void
    header(const std::vector<std::string> &cells)
    {
        emit(cells);
        os_ << "|";
        for (size_t i = 0; i < cells.size(); ++i)
            os_ << "---|";
        os_ << "\n";
    }

    void
    row(const std::vector<std::string> &cells)
    {
        emit(cells);
    }

  private:
    void
    emit(const std::vector<std::string> &cells)
    {
        os_ << "|";
        for (const auto &c : cells)
            os_ << " " << c << " |";
        os_ << "\n";
    }

    std::ostringstream &os_;
};

/** Dispatches rows to either a TextTable or a markdown table. */
class Sink
{
  public:
    Sink(std::ostringstream &os, bool markdown, std::string title)
        : os_(os), markdown_(markdown), title_(std::move(title))
    {
    }

    void
    header(std::vector<std::string> cells)
    {
        if (markdown_) {
            os_ << "\n### " << title_ << "\n\n";
            md_ = std::make_unique<MdTable>(os_);
            md_->header(cells);
        } else {
            text_ = std::make_unique<TextTable>(title_);
            text_->header(std::move(cells));
        }
    }

    void
    row(std::vector<std::string> cells)
    {
        if (markdown_)
            md_->row(cells);
        else
            text_->row(std::move(cells));
    }

    void
    finish()
    {
        if (!markdown_ && text_)
            os_ << "\n" << text_->str();
    }

  private:
    std::ostringstream &os_;
    bool markdown_;
    std::string title_;
    std::unique_ptr<TextTable> text_;
    std::unique_ptr<MdTable> md_;
};

} // namespace

std::string
writeReport(const HistogramAnalyzer &an, const ReportHwInputs &hw,
            const ReportOptions &opt)
{
    std::ostringstream os;
    double instr = static_cast<double>(an.instructions());
    if (instr == 0)
        return "(empty measurement)\n";

    os << (opt.markdown ? "# " : "") << opt.title << "\n";
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%llu instructions, %llu cycles, %.3f cycles "
                      "per average instruction (%.2f us at 200 ns)\n",
                      static_cast<unsigned long long>(
                          an.instructions()),
                      static_cast<unsigned long long>(an.cycles()),
                      an.cpi(), an.cpi() * 0.2);
        os << buf;
    }

    // ----- Table 1 --------------------------------------------------------
    {
        Sink t(os, opt.markdown, "Table 1: Opcode group frequency");
        t.header({"Group", "Percent"});
        auto f = an.opcodeGroupFrequency();
        for (size_t g = 0; g < size_t(arch::Group::NumGroups); ++g) {
            t.row({std::string(arch::groupName(
                       static_cast<arch::Group>(g))),
                   num(f[g], 2)});
        }
        t.finish();
    }

    // ----- Table 2 --------------------------------------------------------
    {
        Sink t(os, opt.markdown, "Table 2: PC-changing instructions");
        t.header({"Class", "% of all", "% taken", "taken % of all"});
        auto rows = an.pcChanging();
        double tot = 0, taken = 0;
        for (size_t c = 1; c < size_t(arch::PcClass::NumClasses); ++c) {
            const auto &r = rows[c];
            if (!r.executed)
                continue;
            tot += static_cast<double>(r.executed);
            taken += static_cast<double>(r.taken);
            t.row({std::string(arch::pcClassName(
                       static_cast<arch::PcClass>(c))),
                   num(100.0 * dbl(r.executed) / instr, 1),
                   num(100.0 * dbl(r.taken) / dbl(r.executed), 0),
                   num(100.0 * dbl(r.taken) / instr, 1)});
        }
        t.row({"TOTAL", num(100.0 * tot / instr, 1),
               num(tot ? 100.0 * taken / tot : 0, 0),
               num(100.0 * taken / instr, 1)});
        t.finish();
    }

    // ----- Table 3 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 3: Specifiers per average instruction");
        t.header({"Object", "Per instruction"});
        t.row({"First specifiers", num(an.firstSpecsPerInstr())});
        t.row({"Other specifiers", num(an.otherSpecsPerInstr())});
        t.row({"Branch displacements", num(an.branchDispsPerInstr())});
        t.finish();
    }

    // ----- Table 4 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 4: Operand specifier distribution (percent)");
        t.header({"Mode", "SPEC1", "SPEC2-6", "Total"});
        auto d = an.specifierDist();
        double t1 = static_cast<double>(d.total[1]);
        double t0 = static_cast<double>(d.total[0]);
        for (size_t c = 0; c < size_t(arch::SpecClass::NumClasses);
             ++c) {
            auto cls = static_cast<arch::SpecClass>(c);
            t.row({std::string(arch::specClassName(cls)),
                   num(t1 ? 100.0 * dbl(d.byClass[1][c]) / t1 : 0, 1),
                   num(t0 ? 100.0 * dbl(d.byClass[0][c]) / t0 : 0, 1),
                   num(t1 + t0 ? 100.0 * dbl(d.classTotal(cls)) /
                                     (t1 + t0)
                               : 0,
                       1)});
        }
        t.row({"Percent indexed",
               num(t1 ? 100.0 * dbl(d.indexed[1]) / t1 : 0, 1),
               num(t0 ? 100.0 * dbl(d.indexed[0]) / t0 : 0, 1),
               num(t1 + t0 ? 100.0 * dbl(d.indexed[0] + d.indexed[1]) /
                                 (t1 + t0)
                           : 0,
                   1)});
        t.finish();
    }

    // ----- Table 5 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 5: D-stream reads and writes per instruction");
        t.header({"Source", "Reads", "Writes"});
        using ucode::Row;
        static const std::pair<const char *, Row> rows[] = {
            {"Spec1", Row::Spec1},        {"Spec2-6", Row::Spec26},
            {"Simple", Row::ExSimple},    {"Field", Row::ExField},
            {"Float", Row::ExFloat},      {"Call/Ret", Row::ExCallRet},
            {"System", Row::ExSystem},    {"Character",
                                           Row::ExCharacter},
            {"Decimal", Row::ExDecimal},  {"Mem Mgmt", Row::MemMgmt},
            {"Int/Except", Row::IntExcept},
        };
        for (const auto &[name, row] : rows) {
            auto rr = an.refsFor(row);
            t.row({name, num(rr.reads), num(rr.writes)});
        }
        auto tot = an.refsTotal();
        t.row({"TOTAL", num(tot.reads), num(tot.writes)});
        t.finish();
    }

    // ----- Table 6 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 6: Estimated size of average instruction");
        t.header({"Quantity", "Value"});
        t.row({"Estimated specifier size (bytes)",
               num(an.estimatedSpecifierBytes(), 2)});
        t.row({"Estimated instruction size (bytes)",
               num(an.estimatedInstrBytes(), 2)});
        if (hw.ibFills) {
            t.row({"IB references per instruction (hw)",
                   num(dbl(hw.ibFills) / instr, 2)});
        }
        t.finish();
    }

    // ----- Table 7 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 7: Interrupt and context-switch headway");
        t.header({"Event", "Instruction headway"});
        if (hw.softIntRequests) {
            t.row({"Software interrupt requests",
                   num(instr / dbl(hw.softIntRequests), 0)});
        }
        t.row({"Hardware and software interrupts",
               num(an.interruptHeadway(), 0)});
        t.row({"Context switches", num(an.contextSwitchHeadway(), 0)});
        t.finish();
    }

    // ----- Table 8 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 8: Average instruction timing (cycles)");
        t.header({"Activity", "Compute", "Read", "R-Stall", "Write",
                  "W-Stall", "IB-Stall", "Total"});
        auto m = an.timingMatrix();
        using ucode::Row;
        for (size_t r = 1; r < size_t(Row::NumRows); ++r) {
            Row row = static_cast<Row>(r);
            const auto &c = m.cell[r];
            t.row({std::string(ucode::rowName(row)),
                   num(c[size_t(Col::Compute)]), num(c[size_t(Col::Read)]),
                   num(c[size_t(Col::RStall)]), num(c[size_t(Col::Write)]),
                   num(c[size_t(Col::WStall)]),
                   num(c[size_t(Col::IbStall)]), num(m.rowTotal(row))});
        }
        t.row({"TOTAL", num(m.colTotal(Col::Compute)),
               num(m.colTotal(Col::Read)), num(m.colTotal(Col::RStall)),
               num(m.colTotal(Col::Write)), num(m.colTotal(Col::WStall)),
               num(m.colTotal(Col::IbStall)), num(m.total())});
        t.finish();
    }

    // ----- Table 9 --------------------------------------------------------
    {
        Sink t(os, opt.markdown,
               "Table 9: Cycles per instruction within each group");
        t.header({"Group", "Compute", "Read", "R-Stall", "Write",
                  "W-Stall", "Total"});
        for (size_t g = 0; g < size_t(arch::Group::NumGroups); ++g) {
            auto gg = static_cast<arch::Group>(g);
            auto c = an.groupCycles(gg);
            double total = 0;
            for (double v : c)
                total += v;
            t.row({std::string(arch::groupName(gg)),
                   num(c[size_t(Col::Compute)], 2),
                   num(c[size_t(Col::Read)], 2),
                   num(c[size_t(Col::RStall)], 2),
                   num(c[size_t(Col::Write)], 2),
                   num(c[size_t(Col::WStall)], 2), num(total, 2)});
        }
        t.finish();
    }

    // ----- Implementation events -------------------------------------------
    {
        Sink t(os, opt.markdown, "Implementation events");
        t.header({"Event", "Per instruction"});
        auto tb = an.tbMisses();
        t.row({"TB misses", num(tb.missesPerInstr, 4)});
        t.row({"TB misses (D-stream)", num(tb.dMissesPerInstr, 4)});
        t.row({"TB misses (I-stream)", num(tb.iMissesPerInstr, 4)});
        t.row({"TB service cycles per miss", num(tb.cyclesPerMiss, 1)});
        t.row({"TB service stall cycles", num(tb.stallCyclesPerMiss, 1)});
        if (hw.ibFills)
            t.row({"IB references (hw)",
                   num(dbl(hw.ibFills) / instr, 2)});
        if (hw.iReadMisses)
            t.row({"Cache I-miss (hw)",
                   num(dbl(hw.iReadMisses) / instr, 3)});
        if (hw.dReadMisses)
            t.row({"Cache D-miss (hw)",
                   num(dbl(hw.dReadMisses) / instr, 3)});
        if (hw.unalignedRefs)
            t.row({"Unaligned refs (hw)",
                   num(dbl(hw.unalignedRefs) / instr, 4)});
        t.finish();
    }

    os << "\n";
    return os.str();
}

} // namespace upc780::upc
