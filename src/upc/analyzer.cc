#include "upc/analyzer.hh"

#include "common/logging.hh"

namespace upc780::upc
{

using ucode::Mem;
using ucode::UAddr;

std::string_view
colName(Col c)
{
    switch (c) {
      case Col::Compute:
        return "Compute";
      case Col::Read:
        return "Read";
      case Col::RStall:
        return "R-Stall";
      case Col::Write:
        return "Write";
      case Col::WStall:
        return "W-Stall";
      case Col::IbStall:
        return "IB-Stall";
      default:
        return "?";
    }
}

HistogramAnalyzer::HistogramAnalyzer(const Histogram &histogram,
                                     const ucode::MicrocodeImage &image)
    : hist_(histogram), img_(image)
{
    instructions_ = hist_.count(img_.marks.decode);
}

double
HistogramAnalyzer::cpi() const
{
    return instructions_ ? static_cast<double>(cycles()) /
                               static_cast<double>(instructions_)
                         : 0.0;
}

Col
HistogramAnalyzer::countColumn(UAddr a) const
{
    const auto &m = img_.marks;
    if (a == m.ibStallDecode || a == m.ibStallSpec1 ||
        a == m.ibStallSpec26 || a == m.ibStallBdisp) {
        return Col::IbStall;
    }
    switch (img_.ops[a].mem) {
      case Mem::ReadV:
      case Mem::ReadP:
        return Col::Read;
      case Mem::WriteV:
        return Col::Write;
      default:
        return Col::Compute;
    }
}

std::array<uint64_t, size_t(Group::NumGroups)>
HistogramAnalyzer::groupCounts() const
{
    std::array<uint64_t, size_t(Group::NumGroups)> out{};
    for (const auto &[addr, note] : img_.execEntries)
        out[size_t(note.group)] += hist_.count(addr);
    return out;
}

std::array<double, size_t(Group::NumGroups)>
HistogramAnalyzer::opcodeGroupFrequency() const
{
    auto counts = groupCounts();
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    std::array<double, size_t(Group::NumGroups)> out{};
    if (total == 0)
        return out;
    for (size_t i = 0; i < counts.size(); ++i)
        out[i] = 100.0 * static_cast<double>(counts[i]) /
                 static_cast<double>(total);
    return out;
}

std::array<PcClassStats, size_t(PcClass::NumClasses)>
HistogramAnalyzer::pcChanging() const
{
    std::array<PcClassStats, size_t(PcClass::NumClasses)> out{};
    for (const auto &[addr, note] : img_.execEntries) {
        if (note.pcClass != PcClass::None)
            out[size_t(note.pcClass)].executed += hist_.count(addr);
    }
    for (const auto &[addr, cls] : img_.takenEntries)
        out[size_t(cls)].taken += hist_.count(addr);
    return out;
}

double
HistogramAnalyzer::firstSpecsPerInstr() const
{
    if (!instructions_)
        return 0;
    uint64_t n = 0;
    for (const auto &[addr, note] : img_.specEntries)
        if (note.first)
            n += hist_.count(addr);
    return static_cast<double>(n) / static_cast<double>(instructions_);
}

double
HistogramAnalyzer::otherSpecsPerInstr() const
{
    if (!instructions_)
        return 0;
    uint64_t n = 0;
    for (const auto &[addr, note] : img_.specEntries)
        if (!note.first)
            n += hist_.count(addr);
    return static_cast<double>(n) / static_cast<double>(instructions_);
}

double
HistogramAnalyzer::branchDispsPerInstr() const
{
    if (!instructions_)
        return 0;
    uint64_t n = 0;
    for (const auto &[addr, note] : img_.execEntries)
        if (note.branchFormat)
            n += hist_.count(addr);
    return static_cast<double>(n) / static_cast<double>(instructions_);
}

SpecifierDist
HistogramAnalyzer::specifierDist() const
{
    SpecifierDist d;
    for (const auto &[addr, note] : img_.specEntries) {
        uint64_t c = hist_.count(addr);
        int f = note.first ? 1 : 0;
        d.byClass[f][size_t(note.cls)] += c;
        d.total[f] += c;
        if (note.indexed)
            d.indexed[f] += c;
    }
    return d;
}

RefRow
HistogramAnalyzer::refsFor(Row r) const
{
    RefRow out;
    if (!instructions_)
        return out;
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        if (img_.rowOf(static_cast<UAddr>(a)) != r)
            continue;
        uint64_t c = hist_.count(static_cast<UAddr>(a));
        if (!c)
            continue;
        switch (img_.ops[a].mem) {
          case Mem::ReadV:
          case Mem::ReadP:
            out.reads += static_cast<double>(c);
            break;
          case Mem::WriteV:
            out.writes += static_cast<double>(c);
            break;
          default:
            break;
        }
    }
    out.reads /= static_cast<double>(instructions_);
    out.writes /= static_cast<double>(instructions_);
    return out;
}

RefRow
HistogramAnalyzer::refsTotal() const
{
    RefRow out;
    for (size_t r = 1; r < size_t(Row::NumRows); ++r) {
        RefRow x = refsFor(static_cast<Row>(r));
        out.reads += x.reads;
        out.writes += x.writes;
    }
    return out;
}

double
HistogramAnalyzer::estimatedSpecifierBytes() const
{
    // Per-class encoded sizes. Displacement widths are not separable
    // in the histogram (shared microcode), so — exactly as the paper
    // does with Wiecek's data [15] — an assumed byte/word/long split
    // is applied (the split below matches this model's workloads:
    // 45% byte, 35% word, 20% long).
    static const double disp_avg = 0.45 * 2 + 0.35 * 3 + 0.20 * 5;
    auto size_of = [&](SpecClass c) -> double {
        switch (c) {
          case SpecClass::Register:
          case SpecClass::ShortLiteral:
          case SpecClass::RegDeferred:
          case SpecClass::AutoIncrement:
          case SpecClass::AutoDecrement:
          case SpecClass::AutoIncDeferred:
            return 1.0;
          case SpecClass::Immediate:
            return 1.0 + 4.0;  // dominated by longword immediates
          case SpecClass::Absolute:
            return 5.0;
          case SpecClass::Displacement:
          case SpecClass::DispDeferred:
            return disp_avg;
          default:
            return 1.0;
        }
    };

    SpecifierDist d = specifierDist();
    uint64_t total = d.total[0] + d.total[1];
    if (!total)
        return 0.0;
    double bytes = 0.0;
    for (size_t c = 0; c < size_t(SpecClass::NumClasses); ++c) {
        uint64_t n = d.byClass[0][c] + d.byClass[1][c];
        bytes += static_cast<double>(n) *
                 size_of(static_cast<SpecClass>(c));
    }
    // Index prefix adds one byte per indexed specifier.
    bytes += static_cast<double>(d.indexed[0] + d.indexed[1]);
    return bytes / static_cast<double>(total);
}

double
HistogramAnalyzer::estimatedInstrBytes() const
{
    double specs = firstSpecsPerInstr() + otherSpecsPerInstr();
    // Branch displacements are predominantly single bytes; the word
    // forms (BRW, BSBW, ACBx) contribute a small surcharge.
    static const double bdisp_avg = 1.15;
    return 1.0 + specs * estimatedSpecifierBytes() +
           branchDispsPerInstr() * bdisp_avg;
}

double
HistogramAnalyzer::interruptHeadway() const
{
    uint64_t n = hist_.count(img_.marks.intDispatch);
    return n ? static_cast<double>(instructions_) /
                   static_cast<double>(n)
             : 0.0;
}

double
HistogramAnalyzer::contextSwitchHeadway() const
{
    UAddr e = img_.execEntry[static_cast<uint8_t>(arch::Op::LDPCTX)];
    uint64_t n = hist_.count(e);
    return n ? static_cast<double>(instructions_) /
                   static_cast<double>(n)
             : 0.0;
}

TimingMatrix
HistogramAnalyzer::timingMatrix() const
{
    TimingMatrix m;
    if (!instructions_)
        return m;
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        UAddr u = static_cast<UAddr>(a);
        Row r = img_.rowOf(u);
        if (r == Row::None)
            continue;
        uint64_t c = hist_.count(u);
        if (c)
            m.cell[size_t(r)][size_t(countColumn(u))] +=
                static_cast<double>(c);
        uint64_t s = hist_.stall(u);
        if (s) {
            Col sc = img_.ops[a].mem == Mem::WriteV ? Col::WStall
                                                    : Col::RStall;
            m.cell[size_t(r)][size_t(sc)] += static_cast<double>(s);
        }
    }
    double inv = 1.0 / static_cast<double>(instructions_);
    for (auto &row : m.cell)
        for (double &cell : row)
            cell *= inv;
    return m;
}

std::array<double, size_t(Col::NumCols)>
HistogramAnalyzer::groupCycles(Group g) const
{
    std::array<double, size_t(Col::NumCols)> out{};
    uint64_t n = groupCounts()[size_t(g)];
    if (!n)
        return out;
    Row r = ucode::execRowFor(g);
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        UAddr u = static_cast<UAddr>(a);
        if (img_.rowOf(u) != r)
            continue;
        out[size_t(countColumn(u))] +=
            static_cast<double>(hist_.count(u));
        uint64_t s = hist_.stall(u);
        if (s) {
            Col sc = img_.ops[a].mem == Mem::WriteV ? Col::WStall
                                                    : Col::RStall;
            out[size_t(sc)] += static_cast<double>(s);
        }
    }
    for (double &v : out)
        v /= static_cast<double>(n);
    return out;
}

uint64_t
HistogramAnalyzer::readCycles() const
{
    uint64_t n = 0;
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        Mem m = img_.ops[a].mem;
        if (m == Mem::ReadV || m == Mem::ReadP)
            n += hist_.count(static_cast<UAddr>(a));
    }
    return n;
}

uint64_t
HistogramAnalyzer::writeCycles() const
{
    uint64_t n = 0;
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        if (img_.ops[a].mem == Mem::WriteV)
            n += hist_.count(static_cast<UAddr>(a));
    }
    return n;
}

uint64_t
HistogramAnalyzer::ibStallCycles() const
{
    const auto &m = img_.marks;
    return hist_.count(m.ibStallDecode) + hist_.count(m.ibStallSpec1) +
           hist_.count(m.ibStallSpec26) + hist_.count(m.ibStallBdisp);
}

uint64_t
HistogramAnalyzer::tbMissServices(bool istream) const
{
    return hist_.count(istream ? img_.marks.tbMissI
                               : img_.marks.tbMissD);
}

uint64_t
HistogramAnalyzer::irqDispatches() const
{
    return hist_.count(img_.marks.intDispatch);
}

TbMissStats
HistogramAnalyzer::tbMisses() const
{
    TbMissStats s;
    if (!instructions_)
        return s;
    uint64_t d = hist_.count(img_.marks.tbMissD);
    uint64_t i = hist_.count(img_.marks.tbMissI);
    uint64_t misses = d + i;
    double inv = 1.0 / static_cast<double>(instructions_);
    s.dMissesPerInstr = static_cast<double>(d) * inv;
    s.iMissesPerInstr = static_cast<double>(i) * inv;
    s.missesPerInstr = static_cast<double>(misses) * inv;
    if (!misses)
        return s;

    // All cycles spent in the Mem Mgmt region belong to miss service.
    double svc = 0, stall = 0;
    for (uint32_t a = 0; a < img_.allocated; ++a) {
        UAddr u = static_cast<UAddr>(a);
        if (img_.rowOf(u) != Row::MemMgmt)
            continue;
        svc += static_cast<double>(hist_.count(u) + hist_.stall(u));
        stall += static_cast<double>(hist_.stall(u));
    }
    s.cyclesPerMiss = svc / static_cast<double>(misses);
    s.stallCyclesPerMiss = stall / static_cast<double>(misses);
    return s;
}

} // namespace upc780::upc
