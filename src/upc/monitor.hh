/**
 * @file
 * The micro-PC histogram monitor (the paper's measurement instrument).
 *
 * The board attaches passively to the CPU's microsequencer: each
 * machine cycle it observes the current control-store address and
 * whether the EBOX is read/write-stalled, and increments the matching
 * bucket counter. It is commanded over a Unibus-style register
 * interface (start/stop/clear/read), and — as on the real machine —
 * monitoring has no effect whatsoever on program execution
 * (passivity is asserted by tests).
 */

#ifndef UPC780_UPC_MONITOR_HH
#define UPC780_UPC_MONITOR_HH

#include <cstdint>

#include "cpu/vax780.hh"
#include "upc/histogram.hh"

namespace upc780::upc
{

/** The histogram count board plus its processor-specific interface. */
class UpcMonitor : public cpu::CycleProbe
{
  public:
    UpcMonitor() = default;

    // ----- Unibus command interface ------------------------------------
    /** Begin counting. */
    void start() { running_ = true; }
    /** Stop counting (data retained). */
    void stop() { running_ = false; }
    /** Clear all buckets. */
    void clear() { histogram_.clear(); }

    bool running() const { return running_; }

    /** Read out the histogram memory. */
    const Histogram &histogram() const { return histogram_; }

    /** Cycles observed while running. */
    uint64_t observedCycles() const { return observed_; }

    // ----- passive probe -------------------------------------------------
    void cycle(ucode::UAddr upc, bool stalled) override;

    // ----- Unibus register-level facade -----------------------------------
    // The board was programmed with a CSR and a data port; this mirrors
    // that interface for completeness (used by the quickstart example
    // and the monitor unit tests).
    enum class Csr : uint16_t
    {
        Go = 1 << 0,     //!< set: counting enabled
        Clear = 1 << 1,  //!< write 1: clear buckets (self-resetting)
    };

    void writeCsr(uint16_t v);
    uint16_t readCsr() const;

    /** Select the bucket addressed by the data port. */
    void writeAddressPort(uint16_t bucket) { addrPort_ = bucket; }

    /** Read the selected bucket (lo longword = count, hi = stalls). */
    uint64_t readDataPort(bool stall_bank) const;

    /** Checkpoint histogram memory + board registers. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    Histogram histogram_;
    bool running_ = false;
    uint64_t observed_ = 0;
    uint16_t addrPort_ = 0;
};

} // namespace upc780::upc

#endif // UPC780_UPC_MONITOR_HH
