#include "upc/histogram.hh"

#include <cinttypes>
#include <cstdio>

#include "common/serial.hh"

namespace upc780::upc
{

uint64_t
Histogram::totalCounts() const
{
    uint64_t t = 0;
    for (uint64_t c : counts_)
        t += c;
    return t;
}

uint64_t
Histogram::totalStalls() const
{
    uint64_t t = 0;
    for (uint64_t c : stalls_)
        t += c;
    return t;
}

void
Histogram::merge(const Histogram &other)
{
    for (uint32_t i = 0; i < NumBuckets; ++i) {
        counts_[i] += other.counts_[i];
        stalls_[i] += other.stalls_[i];
    }
}

bool
Histogram::saveTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "upc780-histogram v1\n");
    for (uint32_t a = 0; a < NumBuckets; ++a) {
        if (counts_[a] || stalls_[a]) {
            std::fprintf(f, "%u %" PRIu64 " %" PRIu64 "\n", a,
                         counts_[a], stalls_[a]);
        }
    }
    std::fclose(f);
    return true;
}

bool
Histogram::loadFrom(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char magic[64];
    if (!std::fgets(magic, sizeof(magic), f) ||
        std::string(magic).rfind("upc780-histogram", 0) != 0) {
        std::fclose(f);
        return false;
    }
    clear();
    uint32_t addr = 0;
    uint64_t count = 0, stall = 0;
    while (std::fscanf(f, "%u %" SCNu64 " %" SCNu64, &addr, &count,
                       &stall) == 3) {
        if (addr >= NumBuckets) {
            std::fclose(f);
            return false;
        }
        counts_[addr] = count;
        stalls_[addr] = stall;
    }
    std::fclose(f);
    return true;
}

void
Histogram::serialize(ByteWriter &w) const
{
    uint32_t nonzero = 0;
    for (uint32_t a = 0; a < NumBuckets; ++a)
        if (counts_[a] || stalls_[a])
            ++nonzero;
    w.u32(nonzero);
    for (uint32_t a = 0; a < NumBuckets; ++a) {
        if (counts_[a] || stalls_[a]) {
            w.u32(a);
            w.u64(counts_[a]);
            w.u64(stalls_[a]);
        }
    }
}

void
Histogram::deserialize(ByteReader &r)
{
    clear();
    const uint32_t nonzero = r.u32();
    if (nonzero > NumBuckets)
        sim_throw(SnapshotError,
                  "snapshot histogram claims %u nonzero buckets of %u",
                  nonzero, NumBuckets);
    for (uint32_t i = 0; i < nonzero; ++i) {
        uint32_t a = r.u32();
        if (a >= NumBuckets)
            sim_throw(SnapshotError,
                      "snapshot histogram bucket %u out of range", a);
        counts_[a] = r.u64();
        stalls_[a] = r.u64();
    }
}

} // namespace upc780::upc
