/**
 * @file
 * Report writer: renders a complete Emer & Clark-style results
 * section (Tables 1-9 plus the implementation events) from one
 * histogram + hardware-counter measurement, as plain text or
 * markdown. The bench binaries print individual tables; this produces
 * the whole packet in one call, which is how the paper's authors used
 * their data-reduction programs (§2.2: "a general resource from which
 * the answers to many questions ... can be obtained").
 */

#ifndef UPC780_UPC_REPORT_HH
#define UPC780_UPC_REPORT_HH

#include <cstdint>
#include <string>

#include "upc/analyzer.hh"

namespace upc780::upc
{

/** Hardware-side numbers the histogram cannot see (cache study [2]). */
struct ReportHwInputs
{
    uint64_t ibFills = 0;
    uint64_t iReadMisses = 0;
    uint64_t dReadMisses = 0;
    uint64_t unalignedRefs = 0;
    uint64_t softIntRequests = 0;  //!< kernel-counted (MTPR shared)
};

/** Report configuration. */
struct ReportOptions
{
    bool markdown = false;   //!< pipe tables instead of aligned text
    std::string title = "VAX-11/780 UPC Measurement Report";
};

/** Render the full report. */
std::string writeReport(const HistogramAnalyzer &analyzer,
                        const ReportHwInputs &hw,
                        const ReportOptions &options = {});

} // namespace upc780::upc

#endif // UPC780_UPC_REPORT_HH
