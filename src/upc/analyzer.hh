/**
 * @file
 * Offline interpretation of a UPC histogram against the static control
 * store map — the paper's data-reduction step. Every quantity in the
 * paper's Tables 1-9 (except the few the paper itself imported from
 * the separate cache study [2]) is derived here from nothing but the
 * two per-bucket counters and static knowledge of the microcode.
 */

#ifndef UPC780_UPC_ANALYZER_HH
#define UPC780_UPC_ANALYZER_HH

#include <array>
#include <cstdint>

#include "arch/opcodes.hh"
#include "arch/specifier.hh"
#include "ucode/controlstore.hh"
#include "upc/histogram.hh"

namespace upc780::upc
{

using arch::Group;
using arch::PcClass;
using arch::SpecClass;
using ucode::Row;

/** Table 8 columns. */
enum class Col : uint8_t
{
    Compute,
    Read,
    RStall,
    Write,
    WStall,
    IbStall,
    NumCols,
};

std::string_view colName(Col c);

/** The Table 8 matrix in cycles per average instruction. */
struct TimingMatrix
{
    double cell[size_t(Row::NumRows)][size_t(Col::NumCols)] = {};

    double
    rowTotal(Row r) const
    {
        double t = 0;
        for (size_t c = 0; c < size_t(Col::NumCols); ++c)
            t += cell[size_t(r)][c];
        return t;
    }

    double
    colTotal(Col c) const
    {
        double t = 0;
        for (size_t r = 0; r < size_t(Row::NumRows); ++r)
            t += cell[r][size_t(c)];
        return t;
    }

    double
    total() const
    {
        double t = 0;
        for (size_t c = 0; c < size_t(Col::NumCols); ++c)
            t += colTotal(static_cast<Col>(c));
        return t;
    }
};

/** Table 2 row. */
struct PcClassStats
{
    uint64_t executed = 0;  //!< instruction executions in this class
    uint64_t taken = 0;     //!< of which actually changed the PC
};

/** Table 4 data. */
struct SpecifierDist
{
    // Counts by [first?1:0][class]; indexed counted separately.
    uint64_t byClass[2][size_t(SpecClass::NumClasses)] = {};
    uint64_t indexed[2] = {};  //!< indexed specifiers by position
    uint64_t total[2] = {};    //!< all specifiers by position

    uint64_t
    classTotal(SpecClass c) const
    {
        return byClass[0][size_t(c)] + byClass[1][size_t(c)];
    }
};

/** Table 5 row: D-stream references per average instruction. */
struct RefRow
{
    double reads = 0;
    double writes = 0;
};

/** §4.2 translation buffer measurements. */
struct TbMissStats
{
    double missesPerInstr = 0;
    double dMissesPerInstr = 0;
    double iMissesPerInstr = 0;
    double cyclesPerMiss = 0;       //!< avg service routine length
    double stallCyclesPerMiss = 0;  //!< read stalls inside the routine
};

/** The analyzer proper. */
class HistogramAnalyzer
{
  public:
    HistogramAnalyzer(const Histogram &histogram,
                      const ucode::MicrocodeImage &image);

    // ----- global ---------------------------------------------------------
    uint64_t instructions() const { return instructions_; }
    uint64_t cycles() const { return hist_.totalCycles(); }
    double cpi() const;

    // ----- Table 1: opcode group frequency ---------------------------------
    std::array<double, size_t(Group::NumGroups)>
    opcodeGroupFrequency() const;

    /** Instruction executions per group (absolute). */
    std::array<uint64_t, size_t(Group::NumGroups)> groupCounts() const;

    // ----- Table 2: PC-changing instructions --------------------------------
    std::array<PcClassStats, size_t(PcClass::NumClasses)>
    pcChanging() const;

    // ----- Table 3: specifiers per instruction -------------------------------
    double firstSpecsPerInstr() const;
    double otherSpecsPerInstr() const;
    double branchDispsPerInstr() const;

    // ----- Table 4: specifier mode distribution ------------------------------
    SpecifierDist specifierDist() const;

    // ----- Table 5: reads/writes by activity ----------------------------------
    /** Rows: Spec1, Spec26, each execute group, Other. */
    RefRow refsFor(Row r) const;
    RefRow refsTotal() const;

    // ----- Table 6: estimated instruction size --------------------------------
    /**
     * Estimated average instruction length in bytes, computed the way
     * the paper does (§3.3.2): opcode byte + measured specifier count
     * x estimated specifier size + branch displacement bytes.
     */
    double estimatedInstrBytes() const;
    double estimatedSpecifierBytes() const;

    // ----- Table 7: headways ----------------------------------------------------
    double interruptHeadway() const;      //!< instr per dispatched intr
    double contextSwitchHeadway() const;  //!< instr per LDPCTX

    // ----- Table 8: the timing matrix --------------------------------------------
    TimingMatrix timingMatrix() const;

    // ----- Table 9: per-group cycles (unweighted) ----------------------------------
    /** Execute-phase cycles per instruction *of that group*, by column. */
    std::array<double, size_t(Col::NumCols)> groupCycles(Group g) const;

    // ----- §4.2 TB misses --------------------------------------------------------------
    TbMissStats tbMisses() const;

    // ----- exact event counts (observability cross-checks) -----------------
    // Integer forms of quantities the double-valued table methods
    // normalize per instruction. These are what the obs counter fabric
    // counts live at the EBOX, so tests can demand *exact* equality
    // between the two independent bookkeepings (histogram
    // interpretation vs live classification); any rounding would
    // launder real attribution bugs.

    /** Execution counts at words whose memory function reads. */
    uint64_t readCycles() const;
    /** Execution counts at words whose memory function writes. */
    uint64_t writeCycles() const;
    /** Counts at the four "insufficient IB bytes" stall addresses. */
    uint64_t ibStallCycles() const;
    /** TB microtraps serviced (miss-routine entry executions). */
    uint64_t tbMissServices(bool istream) const;
    /** Interrupt dispatches (Table 7's headway numerator). */
    uint64_t irqDispatches() const;

  private:
    /** Column of the execution counts at @p a. */
    Col countColumn(ucode::UAddr a) const;

    const Histogram &hist_;
    const ucode::MicrocodeImage &img_;
    uint64_t instructions_;
};

} // namespace upc780::upc

#endif // UPC780_UPC_ANALYZER_HH
