#include "ulint/cfg.hh"

#include <algorithm>

namespace upc780::ulint
{

using ucode::Ib;
using ucode::Mem;
using ucode::Seq;

MicroCfg::MicroCfg(const ucode::MicrocodeImage &image) : img_(image)
{
    succ_.resize(img_.allocated);
    reach_.resize(img_.allocated, false);
    buildFanout();
    buildEdges();
    walk();
}

const std::vector<UAddr> &
MicroCfg::successors(UAddr a) const
{
    static const std::vector<UAddr> empty;
    return a < succ_.size() ? succ_[a] : empty;
}

void
MicroCfg::buildFanout()
{
    // Out-of-range table entries are skipped here (the linter reports
    // each table slot directly); keeping them out of the fan-out stops
    // one bad slot from flooding every SpecDispatch word with edges.
    auto add = [this](UAddr a) {
        if (a != 0 && a < img_.allocated)
            fanout_.push_back(a);
    };

    for (int f = 0; f < 2; ++f) {
        for (size_t m = 0; m < size_t(ucode::SpecMode::NumModes); ++m) {
            for (size_t b = 0; b < size_t(ucode::AccessBucket::NumBuckets);
                 ++b)
                add(img_.specRoutine[f][m][b]);
            add(img_.idxRoutine[f][m]);
        }
        for (size_t b = 0; b < size_t(ucode::AccessBucket::NumBuckets); ++b)
            add(img_.idxTail[f][b]);
        add(img_.regFieldRoutine[f]);
        add(img_.immQuadRoutine[f]);
    }
    for (size_t op = 0; op < img_.execEntry.size(); ++op) {
        add(img_.execEntry[op]);
        add(img_.execEntryRegAlt[op]);
    }

    std::sort(fanout_.begin(), fanout_.end());
    fanout_.erase(std::unique(fanout_.begin(), fanout_.end()),
                  fanout_.end());

    // End-of-instruction targets: the sequencer leaves an instruction
    // for uDECODE, or for the interrupt/exception or machine-check
    // dispatch entry when one is pending.
    const ucode::Landmarks &mk = img_.marks;
    for (UAddr a : {mk.decode, mk.intDispatch, mk.machineCheck})
        if (a != 0)
            endOfInstr_.push_back(a);
}

void
MicroCfg::addEdge(UAddr from, UAddr to)
{
    if (to == 0 || to >= img_.allocated || to >= ucode::ControlStoreSize) {
        dangling_.emplace_back(from, to);
        return;
    }
    std::vector<UAddr> &s = succ_[from];
    if (std::find(s.begin(), s.end(), to) == s.end())
        s.push_back(to);
}

// Hardware-implied edges (traps, stalls, end-of-instruction dispatch)
// go through landmarks the linter validates directly; a bad landmark
// yields one finding there instead of one dangling edge per word.
void
MicroCfg::addImpliedEdge(UAddr from, UAddr to)
{
    if (to != 0 && to < img_.allocated)
        addEdge(from, to);
}

void
MicroCfg::buildEdges()
{
    const ucode::Landmarks &mk = img_.marks;

    for (UAddr a = 1; a < img_.allocated; ++a) {
        // The fabricated-cycle words never sequence anywhere: ABORT
        // dispatches into the Mem Mgmt service entries, and an
        // insufficient-bytes stall word repeats until the IB fills,
        // then resumes the stalled word (already reachable).
        if (a == mk.abort) {
            addImpliedEdge(a, mk.tbMissD);
            addImpliedEdge(a, mk.tbMissI);
            continue;
        }
        if (a == mk.ibStallDecode || a == mk.ibStallSpec1 ||
            a == mk.ibStallSpec26 || a == mk.ibStallBdisp) {
            addImpliedEdge(a, a);
            continue;
        }

        const ucode::MicroOp &op = img_.ops[a];
        switch (op.seq) {
          case Seq::Next:
            addEdge(a, UAddr(a + 1));
            break;
          case Seq::Jump:
            addEdge(a, op.target);
            break;
          case Seq::Call:
            addEdge(a, op.target);
            addEdge(a, UAddr(a + 1));  // via the callee's Return
            break;
          case Seq::Return:
          case Seq::TrapReturn:
            break;
          case Seq::JumpIfFlag:
          case Seq::JumpIfNotFlag:
            addEdge(a, op.target);
            addEdge(a, UAddr(a + 1));
            break;
          case Seq::SpecDispatch:
            for (UAddr t : fanout_)
                addEdge(a, t);
            for (UAddr t : endOfInstr_)
                addImpliedEdge(a, t);
            break;
          case Seq::DecodeNext:
            for (UAddr t : endOfInstr_)
                addImpliedEdge(a, t);
            break;
          case Seq::DecodeNextIfNotFlag:
            addEdge(a, UAddr(a + 1));
            for (UAddr t : endOfInstr_)
                addImpliedEdge(a, t);
            break;
        }

        // Microtrap edge: a virtual-address memory function can miss
        // the TB, and any I-Decode demand can trigger an IB fill that
        // misses on the I-stream; both abort into the trap word.
        if (op.mem == Mem::ReadV || op.mem == Mem::WriteV ||
            op.ib != Ib::None)
            addImpliedEdge(a, mk.abort);

        // IB-starvation edge: the matching insufficient-bytes word.
        switch (op.ib) {
          case Ib::DecodeOp:
            addImpliedEdge(a, mk.ibStallDecode);
            break;
          case Ib::DecodeSpec:
          case Ib::GetImmHigh:
            // The stall is attributed to the position of the specifier
            // being decoded, which the static word does not encode.
            addImpliedEdge(a, mk.ibStallSpec1);
            addImpliedEdge(a, mk.ibStallSpec26);
            break;
          case Ib::GetBranchDisp:
            addImpliedEdge(a, mk.ibStallBdisp);
            break;
          case Ib::None:
            break;
        }
    }
}

void
MicroCfg::walk()
{
    const UAddr root = img_.marks.decode;
    if (root == 0 || root >= img_.allocated)
        return;

    std::vector<UAddr> work{root};
    reach_[root] = true;
    while (!work.empty()) {
        UAddr a = work.back();
        work.pop_back();
        for (UAddr t : succ_[a]) {
            if (!reach_[t]) {
                reach_[t] = true;
                work.push_back(t);
            }
        }
    }
    reachableCount_ = uint32_t(
        std::count(reach_.begin(), reach_.end(), true));
}

} // namespace upc780::ulint
