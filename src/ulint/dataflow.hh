/**
 * @file
 * A small bitmask dataflow framework over the microprogram CFG.
 *
 * The linter's structural rules (UL001-UL009) prove properties of the
 * graph shape; the dataflow rules (UL010+) need properties of what
 * flows *along* it — which micro-register definitions reach which
 * uses, and which writes are dead on every path. This is the classic
 * iterative worklist formulation: a lattice of bitmasks over the
 * abstract micro-registers (effects.hh), per-word gen/kill transfer
 * functions, union or intersection meet, forward or backward
 * direction. The transfer functions are monotone and the lattice has
 * finite height (NumMRegs bits per word), so the fixpoint exists and
 * the worklist terminates in at most nodes x bits re-evaluations —
 * a bound the convergence tests assert.
 *
 * The solver is deliberately generic over an adjacency list rather
 * than hard-wired to MicroCfg::successors: the UL011 reaching-
 * definitions analysis runs over a *sequential* sub-CFG (dispatch
 * edges cut, entry contracts injected as boundary facts), because the
 * full CFG's dispatch over-approximation — every SpecDispatch word
 * reaching every routine entry — would otherwise leak definitions
 * between routines along paths the I-Decode hardware never selects.
 */

#ifndef UPC780_ULINT_DATAFLOW_HH
#define UPC780_ULINT_DATAFLOW_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "ulint/cfg.hh"
#include "ulint/effects.hh"

namespace upc780::ulint
{

/** Analysis direction. */
enum class Direction : uint8_t
{
    Forward,   //!< facts flow from predecessors (reaching defs)
    Backward,  //!< facts flow from successors (liveness)
};

/** Meet operator at control-flow joins. */
enum class Meet : uint8_t
{
    Union,      //!< may-analysis: true on some path
    Intersect,  //!< must-analysis: true on every path
};

/** One dataflow problem over a CFG of `size` words. */
struct Problem
{
    Direction dir = Direction::Forward;
    Meet meet = Meet::Union;

    /**
     * The lattice top: initial value of every node's meet-side set.
     * 0 for union problems, AllRegs (typically) for intersection
     * problems, where an unvisited node must stay vacuously true.
     */
    RegMask top = 0;

    /** Per-address transfer: out = gen | (in & ~kill). Size = words. */
    std::vector<RegMask> gen;
    std::vector<RegMask> kill;

    /**
     * Boundary facts: the meet-side value at these nodes additionally
     * meets the given mask (union: |=, intersection: &=). For a
     * forward problem these are entry nodes (uDECODE starts with
     * nothing defined: mask 0 under Intersect); for a backward
     * problem, exit nodes.
     */
    std::vector<std::pair<UAddr, RegMask>> boundaries;
};

/** A solved problem. */
struct Solution
{
    /** Dataflow value at each word's entry (in program order). */
    std::vector<RegMask> in;
    /** Dataflow value at each word's exit. */
    std::vector<RegMask> out;
    /** Transfer-function evaluations until the fixpoint. */
    uint32_t steps = 0;
    /** False when the step limit cut iteration short (never expected). */
    bool converged = false;
};

/**
 * Iterate @p p to fixpoint over @p succ (successor lists indexed by
 * address; predecessor lists are derived internally for forward
 * problems). @p maxSteps of 0 derives the monotonicity bound
 * (nodes x (bits + 1) evaluations) automatically.
 */
Solution solve(const std::vector<std::vector<UAddr>> &succ,
               const Problem &p, uint32_t maxSteps = 0);

/** Convenience: run over a MicroCfg's full successor relation. */
Solution solve(const MicroCfg &cfg, const Problem &p,
               uint32_t maxSteps = 0);

/** Invert a successor relation (exposed for the dataflow tests). */
std::vector<std::vector<UAddr>>
predecessors(const std::vector<std::vector<UAddr>> &succ);

} // namespace upc780::ulint

#endif // UPC780_ULINT_DATAFLOW_HH
