/**
 * @file
 * ulint: a static verifier for the control store and the attribution
 * map the histogram analyzer interprets it with.
 *
 * The paper's measurement technique attributes every processor cycle
 * to a micro-address and then interprets the resulting histogram
 * against static knowledge of the microcode — the Table 8 activity
 * rows and the specifier-/execute-/taken-branch entry annotations. A
 * single mis-rowed address or stale annotation silently corrupts the
 * derived tables with no runtime symptom, so the static knowledge
 * itself must be mechanically checkable. `lint()` builds the
 * microprogram CFG (see cfg.hh) and proves the invariants below,
 * returning a machine-readable findings report.
 *
 * Rules:
 *  - UL001 reachable-unrowed: a reachable micro-address has no
 *    activity row, so its cycles would vanish from Table 8.
 *  - UL002 dead-rowed: an allocated (or rowed) word the CFG cannot
 *    reach from uDECODE; its row claims cycles that can never occur.
 *  - UL003 dangling-dispatch: a sequencer target or dispatch-table
 *    entry that is 0 (reserved invalid) or outside the allocated
 *    store, or a fallthrough off the end of the allocated region.
 *  - UL004 entry-missing: a routine the decode dispatch hardware
 *    needs — a specifier routine for a valid (mode, access) pair, an
 *    indexed base-calc or post-index tail, an execute entry for a
 *    defined opcode, or a landmark — is absent or unreachable.
 *  - UL005 mem-row-conflict: a word issues a memory function but
 *    claims a compute-only row (DECODE, B-DISP, ABORT), breaking the
 *    read/write/IB-stall column split of Table 8.
 *  - UL006 ibstall-not-unique: an "insufficient bytes" stall address
 *    aliases another stall word, a landmark, or a dispatch entry, or
 *    is not a pure no-op; stall cycles would be misattributed.
 *  - UL007 annotation-mismatch: an analyzer annotation disagrees with
 *    the dispatch tables or the microword it describes (wrong
 *    position/class, stale key, group or branch-format drift).
 *  - UL008 duplicate-entry: one address carries more than one
 *    annotation (or annotates a landmark), so the analyzer would
 *    count its executions in several tables at once.
 *  - UL009 row-mismatch: a landmark or annotated entry carries a row
 *    other than the one the paper's attribution requires (e.g. a
 *    first-specifier routine rowed SPEC2-6).
 *
 * All rules are Severity::Error: the shipped microprogram must be
 * clean, and a ctest case asserts that it is.
 */

#ifndef UPC780_ULINT_ULINT_HH
#define UPC780_ULINT_ULINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ucode/controlstore.hh"
#include "ulint/cfg.hh"

namespace upc780::ulint
{

enum class Severity : uint8_t
{
    Error,
    Warning,
};

std::string_view severityName(Severity s);

/** One rule violation. */
struct Finding
{
    std::string rule;        //!< rule ID, e.g. "UL003"
    Severity severity = Severity::Error;
    UAddr addr = 0;          //!< offending micro-address (0: global)
    ucode::Row row = ucode::Row::None;  //!< its activity row
    std::string detail;      //!< human-readable description
};

/** The findings report for one microprogram image. */
struct Report
{
    std::vector<Finding> findings;
    uint32_t wordsChecked = 0;    //!< allocated control-store words
    uint32_t reachableWords = 0;  //!< words reachable from uDECODE

    /** True when no Error-severity finding was produced. */
    bool clean() const;

    /** Number of findings carrying rule ID @p rule. */
    size_t countRule(std::string_view rule) const;

    /** True if some finding names micro-address @p a. */
    bool flags(UAddr a) const;

    /** One line per finding, plus a summary line. */
    std::string toText() const;

    /** The same report as a JSON object (machine-readable). */
    std::string toJson() const;
};

/** Run every rule against @p image. */
Report lint(const ucode::MicrocodeImage &image);

/** Sorted unique micro-addresses named by the report's findings. */
std::vector<UAddr> flaggedAddresses(const Report &report);

} // namespace upc780::ulint

#endif // UPC780_ULINT_ULINT_HH
