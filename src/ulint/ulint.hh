/**
 * @file
 * ulint: a static verifier for the control store and the attribution
 * map the histogram analyzer interprets it with.
 *
 * The paper's measurement technique attributes every processor cycle
 * to a micro-address and then interprets the resulting histogram
 * against static knowledge of the microcode — the Table 8 activity
 * rows and the specifier-/execute-/taken-branch entry annotations. A
 * single mis-rowed address or stale annotation silently corrupts the
 * derived tables with no runtime symptom, so the static knowledge
 * itself must be mechanically checkable. `lint()` builds the
 * microprogram CFG (see cfg.hh) and proves the invariants below,
 * returning a machine-readable findings report.
 *
 * Rules:
 *  - UL001 reachable-unrowed: a reachable micro-address has no
 *    activity row, so its cycles would vanish from Table 8.
 *  - UL002 dead-rowed: an allocated (or rowed) word the CFG cannot
 *    reach from uDECODE; its row claims cycles that can never occur.
 *  - UL003 dangling-dispatch: a sequencer target or dispatch-table
 *    entry that is 0 (reserved invalid) or outside the allocated
 *    store, or a fallthrough off the end of the allocated region.
 *  - UL004 entry-missing: a routine the decode dispatch hardware
 *    needs — a specifier routine for a valid (mode, access) pair, an
 *    indexed base-calc or post-index tail, an execute entry for a
 *    defined opcode, or a landmark — is absent or unreachable.
 *  - UL005 mem-row-conflict: a word issues a memory function but
 *    claims a compute-only row (DECODE, B-DISP, ABORT), breaking the
 *    read/write/IB-stall column split of Table 8.
 *  - UL006 ibstall-not-unique: an "insufficient bytes" stall address
 *    aliases another stall word, a landmark, or a dispatch entry, or
 *    is not a pure no-op; stall cycles would be misattributed.
 *  - UL007 annotation-mismatch: an analyzer annotation disagrees with
 *    the dispatch tables or the microword it describes (wrong
 *    position/class, stale key, group or branch-format drift).
 *  - UL008 duplicate-entry: one address carries more than one
 *    annotation (or annotates a landmark), so the analyzer would
 *    count its executions in several tables at once.
 *  - UL009 row-mismatch: a landmark or annotated entry carries a row
 *    other than the one the paper's attribution requires (e.g. a
 *    first-specifier routine rowed SPEC2-6).
 *
 * The dataflow rules (UL010+) run the fixpoint engine of dataflow.hh
 * over the per-word effects of effects.hh:
 *
 *  - UL010 dead-write: a word whose only datapath effect is writing a
 *    micro-register, but the value is overwritten on every path before
 *    any use (backward liveness, union meet). Dead setup words dilute
 *    the per-row cycle attribution with cycles that do nothing.
 *  - UL011 undefined-read / bus conflict: a word's certain read of a
 *    micro-register that no write — not even a may-def — can reach
 *    (forward reaching definitions over the sequential sub-CFG, so
 *    facts cannot leak between routines through the dispatch
 *    over-approximation), or a word's own memory function overwrites
 *    a value the word just drove before anything reads it.
 *  - UL012 tainted-reach: a word reachable from uDECODE only through
 *    words flagged by other rules; its attribution inherits their
 *    defects even though the word itself is well-formed.
 *  - UL013 class-ambiguity: a reachable word does not map to exactly
 *    one UPC cycle class (compute/read/write/ib-stall/abort/halt), or
 *    maps to a class its activity row cannot admit — the Table 8
 *    column split would misfile its cycles.
 *  - UL014 counter-unsound: a reachable word can bump an obs counter
 *    its activity row's micro-ops cannot generate, so a dynamic count
 *    could land outside the statically-allowed set.
 *  - UL015 counter-unreachable: no reachable word can generate one of
 *    the core obs counters; the dynamic cross-check for that event
 *    would be vacuously true.
 *  - UL016 decode-divergence: the pre-decoded row matrix the threaded
 *    dispatcher executes disagrees with the source control store — a
 *    row is not a verbatim copy of its word, carries the wrong fused
 *    handler or pad-superblock run length, or its static read/write
 *    cycle class contradicts the effects map. UL013-UL015 audit cycle
 *    classes and counter effects per word; this rule proves the
 *    decoded matrix is a faithful image of those words, so their
 *    verdicts carry over to what the threaded EBOX actually runs.
 *
 * All rules are Severity::Error: the shipped microprogram must be
 * clean, and a ctest case asserts that it is.
 */

#ifndef UPC780_ULINT_ULINT_HH
#define UPC780_ULINT_ULINT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ucode/controlstore.hh"
#include "ulint/cfg.hh"

namespace upc780::ulint
{

enum class Severity : uint8_t
{
    Error,
    Warning,
};

std::string_view severityName(Severity s);

/** One rule violation. */
struct Finding
{
    std::string rule;        //!< rule ID, e.g. "UL003"
    Severity severity = Severity::Error;
    UAddr addr = 0;          //!< offending micro-address (0: global)
    ucode::Row row = ucode::Row::None;  //!< its activity row
    std::string detail;      //!< human-readable description
};

/** The findings report for one microprogram image. */
struct Report
{
    std::vector<Finding> findings;
    uint32_t wordsChecked = 0;    //!< allocated control-store words
    uint32_t reachableWords = 0;  //!< words reachable from uDECODE

    /** True when no Error-severity finding was produced. */
    bool clean() const;

    /** Number of findings carrying rule ID @p rule. */
    size_t countRule(std::string_view rule) const;

    /** True if some finding names micro-address @p a. */
    bool flags(UAddr a) const;

    /** One line per finding, plus a summary line. */
    std::string toText() const;

    /** The same report as a JSON object (machine-readable). */
    std::string toJson() const;

    /**
     * The report as a SARIF 2.1.0 log so CI renders findings as code
     * annotations. Micro-addresses have no source file, so each result
     * carries a logical location naming the control-store word.
     */
    std::string toSarif() const;
};

/** Run every rule against @p image. */
Report lint(const ucode::MicrocodeImage &image);

/** Sorted unique micro-addresses named by the report's findings. */
std::vector<UAddr> flaggedAddresses(const Report &report);

} // namespace upc780::ulint

#endif // UPC780_ULINT_ULINT_HH
