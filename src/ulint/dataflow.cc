#include "ulint/dataflow.hh"

#include <deque>

namespace upc780::ulint
{

std::vector<std::vector<UAddr>>
predecessors(const std::vector<std::vector<UAddr>> &succ)
{
    std::vector<std::vector<UAddr>> pred(succ.size());
    for (UAddr a = 0; a < succ.size(); ++a)
        for (UAddr t : succ[a])
            if (t < pred.size())
                pred[t].push_back(a);
    return pred;
}

Solution
solve(const std::vector<std::vector<UAddr>> &succ, const Problem &p,
      uint32_t maxSteps)
{
    const size_t n = succ.size();
    Solution s;
    s.in.assign(n, p.top);
    s.out.assign(n, p.top);
    if (n == 0) {
        s.converged = true;
        return s;
    }

    // Facts flow along edges in `dir`; the meet at a node draws from
    // its flow-predecessors, and a change re-queues its
    // flow-successors.
    const bool fwd = p.dir == Direction::Forward;
    const std::vector<std::vector<UAddr>> pred = predecessors(succ);
    const auto &meet_from = fwd ? pred : succ;
    const auto &requeue = fwd ? succ : pred;

    std::vector<RegMask> bmask(n, 0);
    std::vector<bool> hasb(n, false);
    for (const auto &[a, m] : p.boundaries) {
        if (a < n) {
            bmask[a] = hasb[a] ? (p.meet == Meet::Union ? bmask[a] | m
                                                        : bmask[a] & m)
                               : m;
            hasb[a] = true;
        }
    }

    uint64_t edges = 0;
    for (const auto &v : succ)
        edges += v.size();
    // Monotone transfers over a finite lattice: every node's value can
    // change at most NumMRegs + 1 times, and each change re-queues at
    // most its degree. The cap only exists to turn a (buggy)
    // non-monotone configuration into a reported non-convergence
    // instead of a hang.
    const uint64_t bound =
        (edges + n + 1) * (NumMRegs + 2) + n;
    const uint64_t cap =
        maxSteps ? maxSteps : bound;

    std::deque<UAddr> work;
    std::vector<bool> queued(n, false);
    if (fwd) {
        for (UAddr a = 0; a < n; ++a) {
            work.push_back(a);
            queued[a] = true;
        }
    } else {
        for (size_t i = n; i-- > 0;) {
            work.push_back(UAddr(i));
            queued[i] = true;
        }
    }

    // For a forward problem `in` is the meet side and `out` the
    // transfer side; a backward problem swaps the roles, so alias
    // them here and the loop body reads identically for both.
    std::vector<RegMask> &meet_side = fwd ? s.in : s.out;
    std::vector<RegMask> &xfer_side = fwd ? s.out : s.in;

    while (!work.empty()) {
        if (s.steps >= cap)
            return s;  // converged stays false
        const UAddr a = work.front();
        work.pop_front();
        queued[a] = false;

        RegMask m = p.meet == Meet::Union ? 0 : p.top;
        for (UAddr q : meet_from[a]) {
            m = p.meet == Meet::Union ? (m | xfer_side[q])
                                      : (m & xfer_side[q]);
        }
        if (hasb[a])
            m = p.meet == Meet::Union ? (m | bmask[a]) : (m & bmask[a]);
        meet_side[a] = m;

        const RegMask gen = a < p.gen.size() ? p.gen[a] : 0;
        const RegMask kill = a < p.kill.size() ? p.kill[a] : 0;
        const RegMask o = gen | (m & ~kill);
        ++s.steps;
        if (o == xfer_side[a])
            continue;
        xfer_side[a] = o;
        for (UAddr q : requeue[a]) {
            if (!queued[q]) {
                queued[q] = true;
                work.push_back(q);
            }
        }
    }
    s.converged = true;
    return s;
}

Solution
solve(const MicroCfg &cfg, const Problem &p, uint32_t maxSteps)
{
    const uint32_t n = cfg.image().allocated;
    std::vector<std::vector<UAddr>> succ(n);
    for (UAddr a = 0; a < n; ++a)
        succ[a] = cfg.successors(a);
    return solve(succ, p, maxSteps);
}

} // namespace upc780::ulint
