/**
 * @file
 * Static control-flow graph of an assembled microprogram.
 *
 * Every number the analyzer derives from a UPC histogram rests on
 * static knowledge of the microcode; `ulint` needs the same knowledge
 * in graph form. The CFG models one node per allocated control-store
 * word and a conservative over-approximation of the microsequencer's
 * possible transitions:
 *
 *  - `Seq::Next` falls through to uPC + 1; `Jump`/`Call` go to the
 *    word's target (a `Call` also makes uPC + 1 reachable through the
 *    eventual `Return`); the conditional forms have both edges.
 *  - `Seq::SpecDispatch` fans out over everything the I-Decode
 *    dispatch hardware can select: every specifier routine for both
 *    positions, the indexed base-calculation and post-index tails,
 *    the register-field and quad-immediate routines, every opcode's
 *    execute entry (including register fast paths), and — once the
 *    specifier program is exhausted — the end-of-instruction targets.
 *  - `Seq::DecodeNext` (and the conditional form) reaches the
 *    end-of-instruction set: uDECODE, the interrupt/exception
 *    dispatch entry, and the machine-check dispatch entry.
 *  - Any word that can microtrap (a virtual-address memory function
 *    or any I-Decode function, whose IB fill can miss the TB) has an
 *    edge to the ABORT word, which dispatches to the two Mem Mgmt
 *    service entries. `Seq::TrapReturn` re-executes the trapped word
 *    (already reachable) and contributes no new edge.
 *  - A word whose I-Decode demand can outrun the IB has an edge to
 *    the matching "insufficient bytes" stall word; the stall words
 *    themselves only self-loop (the stalled word resumes afterwards).
 *
 * The over-approximation errs on the side of extra edges, so a word
 * the CFG cannot reach is dead under every execution.
 */

#ifndef UPC780_ULINT_CFG_HH
#define UPC780_ULINT_CFG_HH

#include <cstdint>
#include <vector>

#include "ucode/controlstore.hh"

namespace upc780::ulint
{

using ucode::UAddr;

/** The static CFG over a MicrocodeImage's allocated words. */
class MicroCfg
{
  public:
    explicit MicroCfg(const ucode::MicrocodeImage &image);

    /** Static successors of @p a (empty for unallocated words). */
    const std::vector<UAddr> &successors(UAddr a) const;

    /** True if @p a is reachable from the uDECODE landmark. */
    bool
    reachable(UAddr a) const
    {
        return a < reach_.size() && reach_[a];
    }

    /** Number of reachable words. */
    uint32_t reachableCount() const { return reachableCount_; }

    /**
     * The decode dispatch fan-out: every address the I-Decode
     * dispatch hardware can select as a routine entry (specifier
     * routines, indexed calc entries and tails, execute entries).
     */
    const std::vector<UAddr> &dispatchFanout() const { return fanout_; }

    /**
     * Edge targets that lie outside the allocated store (address 0 is
     * reserved invalid), as (from, to) pairs. These never enter the
     * successor lists, so the walk stays in bounds; the linter reports
     * each as a dangling dispatch.
     */
    const std::vector<std::pair<UAddr, UAddr>> &danglingEdges() const
    {
        return dangling_;
    }

    const ucode::MicrocodeImage &image() const { return img_; }

  private:
    void buildFanout();
    void buildEdges();
    void addEdge(UAddr from, UAddr to);
    void addImpliedEdge(UAddr from, UAddr to);
    void walk();

    const ucode::MicrocodeImage &img_;
    std::vector<std::vector<UAddr>> succ_;
    std::vector<UAddr> fanout_;
    std::vector<UAddr> endOfInstr_;
    std::vector<std::pair<UAddr, UAddr>> dangling_;
    std::vector<bool> reach_;
    uint32_t reachableCount_ = 0;
};

} // namespace upc780::ulint

#endif // UPC780_ULINT_CFG_HH
