/**
 * @file
 * Per-word effect derivation for the control store: what each
 * microinstruction can do to the abstract EBOX micro-registers, which
 * UPC cycle class its histogram cycles belong to, and which obs
 * counters a cycle attributed to it is allowed to bump.
 *
 * This is the static half of the attribution cross-check. The dynamic
 * half — the EBOX's end-of-cycle classification (obs::emitCycle) and
 * the monitor's count/stall bucketing — is derived from the *same*
 * microword fields at runtime; deriving the allowed sets here, from
 * nothing but the assembled image, lets the linter prove the static
 * map sound (rules UL013-UL015) and lets the experiment runner refute
 * any run whose histogram or counter totals land outside them
 * (sim::auditAttribution).
 *
 * Register effects are split by intra-cycle stage because the EBOX
 * orders one cycle as: pre-memory datapath work (address/data setup),
 * the memory function, then post-memory datapath work and sequencing.
 * A WriteResult word, for example, defines MDR *before* its WriteV
 * consumes it; an OperandFromMdr word reads the MDR its own ReadV just
 * produced. The dataflow rules (UL010/UL011) need that ordering to
 * avoid false positives on the shipped microprogram.
 */

#ifndef UPC780_ULINT_EFFECTS_HH
#define UPC780_ULINT_EFFECTS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/counters.hh"
#include "ucode/controlstore.hh"
#include "ulint/cfg.hh"

namespace upc780::ulint
{

// ----- abstract micro-registers ----------------------------------------

/**
 * The EBOX state the dataflow rules track: the memory-address latch,
 * the memory-data register, and the condition flag the conditional
 * sequencer functions test. GPRs, PC, and the operand/result queues
 * are deliberately out of scope — they are architectural state with
 * cross-instruction lifetime, so "dead write" and "use before def"
 * have no per-routine meaning for them.
 */
enum class MReg : uint8_t
{
    Taddr,
    Mdr,
    Flag,
    NumRegs,
};

constexpr size_t NumMRegs = static_cast<size_t>(MReg::NumRegs);

std::string_view mregName(MReg r);

/** Bitmask over MReg (the dataflow lattice element). */
using RegMask = uint32_t;

constexpr RegMask
regBit(MReg r)
{
    return RegMask(1) << static_cast<unsigned>(r);
}

constexpr RegMask AllRegs = (RegMask(1) << NumMRegs) - 1;

/** Register effects of one microword, by intra-cycle stage. */
struct RegEffects
{
    RegMask usePre = 0;   //!< datapath reads before the memory function
    RegMask defPre = 0;   //!< datapath must-defs before the memory function
    RegMask useMem = 0;   //!< registers the memory function consumes
    RegMask defMem = 0;   //!< registers the memory function produces
    RegMask usePost = 0;  //!< datapath/sequencer reads after the memory op
    RegMask defPost = 0;  //!< datapath must-defs after the memory op
    RegMask defMay = 0;   //!< everything the word *might* define
    /**
     * Certain reads per stage (UL011's must-be-defined check); subsets
     * of usePre/usePost. Kept separate per stage because a register
     * can be a may-use of one stage and a certain use of another —
     * ExecStep may consult anything pre-stage but only its memory
     * phase's address/data reads are unconditional. Memory-stage uses
     * (useMem) are always certain and need no separate mask.
     */
    RegMask usePreSure = 0;
    RegMask usePostSure = 0;
    bool pureDef = false; //!< datapath's only effect is its register defs

    /** Everything the word definitely overwrites (liveness kill set). */
    RegMask
    defMust() const
    {
        return defPre | defMem | defPost;
    }

    /** Upward-exposed uses: reads no earlier stage of the word feeds. */
    RegMask
    liveUse() const
    {
        return usePre | (useMem & ~defPre) |
               (usePost & ~(defPre | defMem));
    }
};

/** Derive the register effects of @p op (see the table in effects.cc). */
RegEffects regEffects(const ucode::MicroOp &op);

// ----- cycle classes ---------------------------------------------------

/**
 * The class every cycle attributed to a word belongs to. Compute,
 * Read, and Write split by the word's static memory function exactly
 * as the analyzer's Table 8 columns do; IbStall, Abort, and Halt are
 * the fabricated-cycle landmarks, which the EBOX classifies by
 * address identity rather than by microword fields.
 */
enum class CycleClass : uint8_t
{
    Compute,
    Read,
    Write,
    IbStall,
    Abort,
    Halt,
    NumClasses,
};

std::string_view cycleClassName(CycleClass c);

/** Bitmask over CycleClass. */
using ClassMask = uint8_t;

constexpr ClassMask
classBit(CycleClass c)
{
    return ClassMask(1u << static_cast<unsigned>(c));
}

// ----- counter effects -------------------------------------------------

/** Bitmask over obs::Ev (fits: the registry holds < 64 events). */
using CounterMask = uint64_t;

static_assert(obs::NumEvents <= 64,
              "CounterMask must cover every obs event");

constexpr CounterMask
counterBit(obs::Ev e)
{
    return CounterMask(1) << static_cast<uint32_t>(e);
}

// ----- the per-word effect map -----------------------------------------

/** Everything the attribution audit needs to know about one word. */
struct WordEffects
{
    /** The word's cycle class (first of @ref candidates by priority). */
    CycleClass cls = CycleClass::Compute;
    /**
     * Every class the word matches. More than one bit set means the
     * attribution is ambiguous — e.g. a landmark that also carries a
     * memory function — which rule UL013 reports.
     */
    ClassMask candidates = 0;
    /** Word can accrue read/write stall cycles (has a memory function). */
    bool canStall = false;
    /** Obs counters a cycle attributed to this word may bump. */
    CounterMask counters = 0;
};

/**
 * The static attribution matrix: for every allocated word, its cycle
 * class, stall capability, and allowed counter set, derived from the
 * image alone. `tools/ulint --attribution` emits it as JSON; the
 * runtime audit (sim::auditAttribution) holds each run's histogram and
 * counter totals to it.
 */
class EffectMap
{
  public:
    explicit EffectMap(const ucode::MicrocodeImage &image);

    const WordEffects &at(UAddr a) const;

    CycleClass classOf(UAddr a) const { return at(a).cls; }
    bool canStall(UAddr a) const { return at(a).canStall; }
    CounterMask countersOf(UAddr a) const { return at(a).counters; }

    /** Cycle classes the paper's attribution admits for row @p r. */
    static ClassMask allowedClasses(ucode::Row r);

    /** Obs counters a word of row @p r may bump. */
    static CounterMask allowedCounters(ucode::Row r);

    /**
     * The matrix as JSON: one entry per allocated word with its row,
     * class, stall capability, reachability (from @p cfg), and counter
     * names. Machine-readable contract for CI and the audit tooling.
     */
    std::string toJson(const MicroCfg &cfg) const;

    const ucode::MicrocodeImage &image() const { return img_; }

  private:
    const ucode::MicrocodeImage &img_;
    std::vector<WordEffects> fx_;
};

} // namespace upc780::ulint

#endif // UPC780_ULINT_EFFECTS_HH
