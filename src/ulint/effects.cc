#include "ulint/effects.hh"

#include <cstdio>

namespace upc780::ulint
{

using ucode::Dp;
using ucode::Ib;
using ucode::Mem;
using ucode::MicroOp;
using ucode::Row;
using ucode::Seq;

std::string_view
mregName(MReg r)
{
    switch (r) {
      case MReg::Taddr: return "TADDR";
      case MReg::Mdr: return "MDR";
      case MReg::Flag: return "FLAG";
      default: return "?";
    }
}

std::string_view
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::Compute: return "compute";
      case CycleClass::Read: return "read";
      case CycleClass::Write: return "write";
      case CycleClass::IbStall: return "ib-stall";
      case CycleClass::Abort: return "abort";
      case CycleClass::Halt: return "halt";
      default: return "?";
    }
}

namespace
{

constexpr RegMask T = regBit(MReg::Taddr);
constexpr RegMask M = regBit(MReg::Mdr);
constexpr RegMask F = regBit(MReg::Flag);

} // namespace

// The per-Dp effect table mirrors the EBOX interpreter (cpu/ebox.cc
// dpPre/dpPost/dpAll): pre-stage defs are the address/data setup that
// runs before the memory function, post-stage uses are operand capture
// from the just-read MDR. Two deliberate asymmetries keep the derived
// rules conservative in the safe direction:
//
//  - Exec/ExecStep/LoopDec/OsAssist *use* every register (keeps
//    upstream defs live, so UL010 cannot flag a write an execute step
//    might consume) but their defs are may-defs only — except that an
//    ExecStep with a memory function must-defines the registers
//    execStepPre loads before the phase's memory op.
//  - usePreSure/usePostSure list only reads whose value the
//    interpreter consumes unconditionally (UL011's must-be-defined
//    check); the condition FLAG is excluded because flags
//    legitimately flow across instruction boundaries the
//    routine-local analysis cannot see.
RegEffects
regEffects(const MicroOp &op)
{
    RegEffects e;

    switch (op.dp) {
      case Dp::Nop:
      case Dp::OperandFromReg:
      case Dp::OperandFromLit:
      case Dp::OperandFromImm:
      case Dp::OperandImmHigh:
      case Dp::RegWriteSpec:
      case Dp::Halt:
        break;

      case Dp::SpecLoadReg:
      case Dp::SpecLoadRegDisp:
      case Dp::SpecLoadAbs:
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::SpecAutoInc:
      case Dp::SpecAutoDec:
        e.defPre = T;  // plus a GPR side effect: not a pure def
        break;
      case Dp::SpecIndexBase:
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::SpecIndexAdd:
        e.usePre = T;
        e.usePreSure = T;
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::MdrToTaddr:
        e.usePre = M;
        e.usePreSure = M;
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::OperandFromMdr:
        e.usePost = M | T;
        e.usePostSure = M;
        break;
      case Dp::OperandAddr:
        e.usePost = T;
        e.usePostSure = T;
        break;
      case Dp::WriteResult:
        e.defPre = M;
        break;

      case Dp::Exec:
        e.usePre = T | M | F;
        e.defMay = T | M | F;
        break;
      case Dp::ExecStep:
        e.usePre = T | M | F;
        e.defMay = T | M | F;
        // execStepPre loads the address (and, for a write, the data)
        // register before any memory phase it requests; a read phase
        // replaces MDR itself, so only TADDR is a certain pre-def —
        // claiming MDR too would look like a write-before-read bus
        // conflict to UL011. Without a memory phase nothing is certain.
        if (op.mem == Mem::WriteV)
            e.defPre = T | M;
        else if (op.mem != Mem::None)
            e.defPre = T;
        break;
      case Dp::LoopDec:
        e.usePre = T | M | F;
        e.defPost = F;
        e.defMay = T | M | F;
        break;
      case Dp::ModifyWriteback:
        // Conditionally loads TADDR/MDR and performs the write; when
        // it suppresses the memory op the uses vanish with the defs,
        // so for staging purposes the defs are certain.
        e.defPre = T | M;
        e.defMay = T | M;
        break;
      case Dp::BranchTarget:
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::TakeBranch:
        e.usePre = T;
        e.usePreSure = T;
        break;

      case Dp::TbComputePte:
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::TbFill:
        e.usePost = M;
        e.usePostSure = M;
        break;

      case Dp::IntPushPc:
      case Dp::IntPushPsl:
      case Dp::McheckPushCode:
        e.defPre = T | M;
        break;
      case Dp::IntVector:
        e.defPre = T;
        e.pureDef = true;
        break;
      case Dp::IntEnter:
        e.usePre = M;
        e.usePreSure = M;
        break;

      case Dp::OsAssist:
        e.usePre = T | M | F;
        e.defMay = T | M | F;
        break;
    }

    switch (op.mem) {
      case Mem::None:
        break;
      case Mem::ReadV:
      case Mem::ReadP:
        e.useMem = T;
        e.defMem = M;
        break;
      case Mem::WriteV:
        e.useMem = T | M;
        break;
    }
    // Conditional sequencing reads the flag (after the datapath wrote
    // it, for LoopDec-style words). Live, but never a certain use.
    if (op.seq == Seq::JumpIfFlag || op.seq == Seq::JumpIfNotFlag ||
        op.seq == Seq::DecodeNextIfNotFlag)
        e.usePost |= F;

    e.defMay |= e.defMust();
    return e;
}

// ----- cycle classes and counter masks ---------------------------------

namespace
{

constexpr CounterMask CntUops = counterBit(obs::Ev::EboxUops);
constexpr CounterMask CntDecodes = counterBit(obs::Ev::IboxDecodes);
constexpr CounterMask CntIbStall =
    counterBit(obs::Ev::EboxIbStallCycles);
constexpr CounterMask CntStall = counterBit(obs::Ev::EboxStallCycles);
constexpr CounterMask CntAborts = counterBit(obs::Ev::EboxAborts);
constexpr CounterMask CntHalt = counterBit(obs::Ev::EboxHaltCycles);
constexpr CounterMask CntMemRead =
    counterBit(obs::Ev::EboxMemReadCycles);
constexpr CounterMask CntMemWrite =
    counterBit(obs::Ev::EboxMemWriteCycles);
constexpr CounterMask CntTbD = counterBit(obs::Ev::TbMissServicesD);
constexpr CounterMask CntTbI = counterBit(obs::Ev::TbMissServicesI);
constexpr CounterMask CntIrq = counterBit(obs::Ev::IrqDispatches);
constexpr CounterMask CntMcheck = counterBit(obs::Ev::MachineChecks);

/** Counters any counted cycle at an ordinary execute word may bump. */
constexpr CounterMask ExecCommon =
    CntUops | CntMemRead | CntMemWrite | CntStall | CntIrq | CntMcheck;

bool
isStallMark(const ucode::Landmarks &mk, UAddr a)
{
    return a != 0 && (a == mk.ibStallDecode || a == mk.ibStallSpec1 ||
                      a == mk.ibStallSpec26 || a == mk.ibStallBdisp);
}

/** True when the sequencer function can end the instruction (and so
 *  dispatch a pending interrupt or machine check). */
bool
canEndInstruction(Seq s)
{
    return s == Seq::DecodeNext || s == Seq::DecodeNextIfNotFlag ||
           s == Seq::SpecDispatch;
}

WordEffects
deriveWord(const ucode::MicrocodeImage &img, UAddr a)
{
    const ucode::Landmarks &mk = img.marks;
    const MicroOp &op = img.ops[a];
    WordEffects w;

    // Class candidates: the fabricated-cycle landmarks claim their
    // class by address identity; everything else classifies by its
    // static memory function, exactly as the analyzer's column split
    // and the EBOX's end-of-cycle classification do. A landmark that
    // also carries a memory function matches two classes — ambiguous,
    // which UL013 reports.
    if (a == mk.halted)
        w.candidates |= classBit(CycleClass::Halt);
    if (a == mk.abort)
        w.candidates |= classBit(CycleClass::Abort);
    if (isStallMark(mk, a))
        w.candidates |= classBit(CycleClass::IbStall);

    CycleClass memcls = CycleClass::Compute;
    if (op.mem == Mem::ReadV || op.mem == Mem::ReadP)
        memcls = CycleClass::Read;
    else if (op.mem == Mem::WriteV)
        memcls = CycleClass::Write;

    if (w.candidates == 0)
        w.candidates = classBit(memcls);
    else if (op.mem != Mem::None)
        w.candidates |= classBit(memcls);

    // Primary class, in the EBOX's classification priority.
    if (w.candidates & classBit(CycleClass::Halt))
        w.cls = CycleClass::Halt;
    else if (w.candidates & classBit(CycleClass::Abort))
        w.cls = CycleClass::Abort;
    else if (w.candidates & classBit(CycleClass::IbStall))
        w.cls = CycleClass::IbStall;
    else
        w.cls = memcls;

    w.canStall = op.mem != Mem::None;

    // Counter mask: what obs::emitCycle can bump for a cycle landing
    // at this address.
    switch (w.cls) {
      case CycleClass::Halt:
        w.counters = CntHalt;
        break;
      case CycleClass::Abort:
        w.counters = CntAborts | CntTbD | CntTbI;
        break;
      case CycleClass::IbStall:
        w.counters = CntIbStall;
        break;
      default:
        w.counters = CntUops;
        if (op.ib == Ib::DecodeOp)
            w.counters |= CntDecodes;
        if (op.mem == Mem::ReadV || op.mem == Mem::ReadP)
            w.counters |= CntMemRead;
        if (op.mem == Mem::WriteV)
            w.counters |= CntMemWrite;
        if (canEndInstruction(op.seq))
            w.counters |= CntIrq | CntMcheck;
        break;
    }
    if (w.canStall)
        w.counters |= CntStall;
    return w;
}

} // namespace

EffectMap::EffectMap(const ucode::MicrocodeImage &image) : img_(image)
{
    fx_.resize(img_.allocated);
    for (UAddr a = 1; a < img_.allocated; ++a)
        fx_[a] = deriveWord(img_, a);
}

const WordEffects &
EffectMap::at(UAddr a) const
{
    static const WordEffects none;
    return a < fx_.size() ? fx_[a] : none;
}

ClassMask
EffectMap::allowedClasses(Row r)
{
    constexpr ClassMask C = classBit(CycleClass::Compute);
    constexpr ClassMask R = classBit(CycleClass::Read);
    constexpr ClassMask W = classBit(CycleClass::Write);
    constexpr ClassMask S = classBit(CycleClass::IbStall);

    switch (r) {
      case Row::Decode:
        return ClassMask(C | S);
      case Row::Spec1:
      case Row::Spec26:
        return ClassMask(C | R | W | S);
      case Row::BDisp:
        return ClassMask(C | S);
      case Row::ExSimple:
      case Row::ExField:
      case Row::ExFloat:
      case Row::ExCallRet:
      case Row::ExCharacter:
      case Row::ExDecimal:
        return ClassMask(C | R | W);
      case Row::ExSystem:
        return ClassMask(C | R | W | classBit(CycleClass::Halt));
      case Row::IntExcept:
      case Row::MemMgmt:
        return ClassMask(C | R | W);
      case Row::Abort:
        return classBit(CycleClass::Abort);
      case Row::None:
      case Row::NumRows:
      default:
        return 0;
    }
}

CounterMask
EffectMap::allowedCounters(Row r)
{
    switch (r) {
      case Row::Decode:
        // The IRD word (decode + dispatch) and the opcode-starved
        // stall landmark share this row.
        return CntUops | CntDecodes | CntIrq | CntMcheck | CntIbStall;
      case Row::Spec1:
      case Row::Spec26:
        return ExecCommon | CntIbStall;
      case Row::BDisp:
        // Displacement consumption and branch-target arithmetic are
        // compute-only; the taken-branch word ends the instruction.
        return CntUops | CntIrq | CntMcheck | CntIbStall;
      case Row::ExSimple:
      case Row::ExField:
      case Row::ExFloat:
      case Row::ExCallRet:
      case Row::ExCharacter:
      case Row::ExDecimal:
        return ExecCommon;
      case Row::ExSystem:
        return ExecCommon | CntHalt;
      case Row::IntExcept:
        return ExecCommon;
      case Row::MemMgmt:
        // The TB service routine retries the trapped word; it never
        // ends an instruction, so no dispatch counters.
        return CntUops | CntMemRead | CntMemWrite | CntStall;
      case Row::Abort:
        return CntAborts | CntTbD | CntTbI;
      case Row::None:
      case Row::NumRows:
      default:
        return 0;
    }
}

std::string
EffectMap::toJson(const MicroCfg &cfg) const
{
    auto appendf = [](std::string &out, const char *format, auto... args) {
        char buf[256];
        snprintf(buf, sizeof(buf), format, args...);
        out += buf;
    };

    std::string out = "{\n";
    appendf(out, "  \"wordsChecked\": %u,\n", img_.allocated);
    appendf(out, "  \"reachableWords\": %u,\n", cfg.reachableCount());
    out += "  \"rows\": [";
    bool first = true;
    for (UAddr a = 1; a < img_.allocated; ++a) {
        const WordEffects &w = fx_[a];
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendf(out,
                "{\"addr\": %u, \"row\": \"%s\", \"class\": \"%s\", "
                "\"canStall\": %s, \"reachable\": %s, \"counters\": [",
                unsigned(a),
                std::string(ucode::rowName(img_.rowOf(a))).c_str(),
                std::string(cycleClassName(w.cls)).c_str(),
                w.canStall ? "true" : "false",
                cfg.reachable(a) ? "true" : "false");
        bool firstc = true;
        for (uint32_t e = 0; e < obs::NumEvents; ++e) {
            if (!(w.counters & (CounterMask(1) << e)))
                continue;
            appendf(out, "%s\"%s\"", firstc ? "" : ", ",
                    std::string(obs::evName(obs::Ev(e))).c_str());
            firstc = false;
        }
        out += "]}";
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace upc780::ulint
