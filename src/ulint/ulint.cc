#include "ulint/ulint.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "arch/opcodes.hh"
#include "arch/specifier.hh"
#include "ucode/decoded.hh"
#include "ulint/dataflow.hh"
#include "ulint/effects.hh"

namespace upc780::ulint
{

using arch::PcClass;
using ucode::AccessBucket;
using ucode::Ib;
using ucode::Mem;
using ucode::MicrocodeImage;
using ucode::Row;
using ucode::Seq;
using ucode::SpecMode;

std::string_view
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

bool
Report::clean() const
{
    for (const Finding &f : findings)
        if (f.severity == Severity::Error)
            return false;
    return true;
}

size_t
Report::countRule(std::string_view rule) const
{
    size_t n = 0;
    for (const Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

bool
Report::flags(UAddr a) const
{
    for (const Finding &f : findings)
        if (f.addr == a)
            return true;
    return false;
}

namespace
{

std::string
fmt(const char *format, ...)
{
    va_list ap;
    va_start(ap, format);
    char buf[512];
    vsnprintf(buf, sizeof(buf), format, ap);
    va_end(ap);
    return buf;
}

/** Which (mode, access) pairs the decode hardware dispatches to. */
bool
specPairValid(SpecMode m, AccessBucket b)
{
    if (m == SpecMode::Lit || m == SpecMode::Imm)
        return b == AccessBucket::Read;
    if (m == SpecMode::Reg)
        return b != AccessBucket::Addr;
    return true;
}

/** Memory base modes that can carry an index prefix. */
bool
specModeIndexable(SpecMode m)
{
    return m != SpecMode::Lit && m != SpecMode::Reg && m != SpecMode::Imm;
}

const char *
specModeName(SpecMode m)
{
    switch (m) {
      case SpecMode::Lit: return "literal";
      case SpecMode::Reg: return "register";
      case SpecMode::RegDef: return "register-deferred";
      case SpecMode::AutoInc: return "autoincrement";
      case SpecMode::AutoIncDef: return "autoinc-deferred";
      case SpecMode::AutoDec: return "autodecrement";
      case SpecMode::Disp: return "displacement";
      case SpecMode::DispDef: return "disp-deferred";
      case SpecMode::Abs: return "absolute";
      case SpecMode::Imm: return "immediate";
      default: return "?";
    }
}

const char *
bucketName(AccessBucket b)
{
    switch (b) {
      case AccessBucket::Read: return "read";
      case AccessBucket::Write: return "write";
      case AccessBucket::Modify: return "modify";
      case AccessBucket::Addr: return "addr";
      default: return "?";
    }
}

/** The Table 4 class a specifier-routine family serves. */
arch::SpecClass
specClassFor(SpecMode m)
{
    switch (m) {
      case SpecMode::Lit: return arch::SpecClass::ShortLiteral;
      case SpecMode::Reg: return arch::SpecClass::Register;
      case SpecMode::RegDef: return arch::SpecClass::RegDeferred;
      case SpecMode::AutoInc: return arch::SpecClass::AutoIncrement;
      case SpecMode::AutoIncDef: return arch::SpecClass::AutoIncDeferred;
      case SpecMode::AutoDec: return arch::SpecClass::AutoDecrement;
      case SpecMode::Disp: return arch::SpecClass::Displacement;
      case SpecMode::DispDef: return arch::SpecClass::DispDeferred;
      case SpecMode::Abs: return arch::SpecClass::Absolute;
      case SpecMode::Imm:
      default: return arch::SpecClass::Immediate;
    }
}

/** Runs the rules and accumulates findings. */
class Linter
{
  public:
    explicit Linter(const MicrocodeImage &img)
        : img_(img), cfg_(img), fx_(img)
    {
    }

    Report
    run()
    {
        rep_.wordsChecked = img_.allocated;
        rep_.reachableWords = cfg_.reachableCount();
        checkLandmarks();
        checkReachabilityRows();   // UL001, UL002
        checkDanglingEdges();      // UL003 (per-word sequencer targets)
        checkDispatchTables();     // UL003, UL004, UL007, UL009
        checkExecTables();         // UL003, UL004, UL007, UL009
        checkMemRowConflicts();    // UL005
        checkIbStallWords();       // UL006
        checkAnnotationKeys();     // UL007, UL008
        checkTakenEntries();       // UL007
        checkDecodedRows();        // UL016 (before UL013-UL015: their
                                   // verdicts are about the decoded
                                   // matrix only if the decode is true)
        checkCycleClasses();       // UL013
        checkCounterEffects();     // UL014, UL015
        checkDataflow();           // UL010, UL011
        checkCutReachability();    // UL012 (last: consumes the rest)
        return std::move(rep_);
    }

  private:
    void
    add(const char *rule, UAddr a, std::string detail)
    {
        rep_.findings.push_back(Finding{
            rule, Severity::Error, a, a < ucode::ControlStoreSize
                                          ? img_.rowOf(a)
                                          : Row::None,
            std::move(detail)});
    }

    bool inStore(UAddr a) const { return a != 0 && a < img_.allocated; }

    // A landmark, dispatch-table entry, or annotation key that is
    // absent (0) or out of range gets one finding here; every other
    // rule then skips it instead of cascading.
    bool
    requireInStore(const char *rule, UAddr a, const char *what)
    {
        if (inStore(a))
            return true;
        if (a == 0)
            add(rule, 0, fmt("%s is missing", what));
        else
            add("UL003", a,
                fmt("%s points outside the allocated store "
                    "(0x%04x >= 0x%04x)",
                    what, a, img_.allocated));
        return false;
    }

    void
    requireReachable(UAddr a, const char *what)
    {
        if (!cfg_.reachable(a))
            add("UL004", a, fmt("%s at 0x%04x is not reachable from "
                                "uDECODE", what, a));
    }

    void
    requireRow(UAddr a, Row want, const char *what)
    {
        if (img_.rowOf(a) != want) {
            add("UL009", a,
                fmt("%s at 0x%04x is rowed %s, expected %s", what, a,
                    std::string(ucode::rowName(img_.rowOf(a))).c_str(),
                    std::string(ucode::rowName(want)).c_str()));
        }
    }

    void checkLandmarks();
    void checkReachabilityRows();
    void checkDanglingEdges();
    void checkDispatchTables();
    void checkExecTables();
    void checkMemRowConflicts();
    void checkIbStallWords();
    void checkAnnotationKeys();
    void checkTakenEntries();
    void checkDecodedRows();
    void checkCycleClasses();
    void checkCounterEffects();
    void checkDataflow();
    void checkCutReachability();

    /** Check one spec-routine entry against its annotation. */
    void specEntryNote(UAddr a, bool first, bool indexed,
                       arch::SpecClass cls, const char *what);

    const MicrocodeImage &img_;
    MicroCfg cfg_;
    EffectMap fx_;
    Report rep_;
};

void
Linter::checkLandmarks()
{
    const ucode::Landmarks &mk = img_.marks;
    struct Mark
    {
        UAddr addr;
        Row row;
        const char *name;
    };
    const Mark marks[] = {
        {mk.decode, Row::Decode, "uDECODE landmark"},
        {mk.ibStallDecode, Row::Decode, "IB-stall (opcode) landmark"},
        {mk.ibStallSpec1, Row::Spec1, "IB-stall (spec 1) landmark"},
        {mk.ibStallSpec26, Row::Spec26, "IB-stall (spec 2-6) landmark"},
        {mk.ibStallBdisp, Row::BDisp, "IB-stall (b-disp) landmark"},
        {mk.abort, Row::Abort, "ABORT landmark"},
        {mk.tbMissD, Row::MemMgmt, "D-stream TB-miss entry"},
        {mk.tbMissI, Row::MemMgmt, "I-stream TB-miss entry"},
        {mk.intDispatch, Row::IntExcept, "interrupt dispatch entry"},
        {mk.machineCheck, Row::IntExcept, "machine-check dispatch entry"},
        {mk.halted, Row::ExSystem, "HALT resting word"},
    };
    for (const Mark &m : marks) {
        if (!requireInStore("UL004", m.addr, m.name))
            continue;
        requireReachable(m.addr, m.name);
        requireRow(m.addr, m.row, m.name);
    }
}

void
Linter::checkReachabilityRows()
{
    for (UAddr a = 1; a < img_.allocated; ++a) {
        if (cfg_.reachable(a)) {
            if (img_.rowOf(a) == Row::None) {
                add("UL001", a,
                    fmt("reachable word 0x%04x has no activity row: its "
                        "cycles would vanish from Table 8", a));
            }
        } else {
            add("UL002", a,
                fmt("word 0x%04x is allocated but unreachable from "
                    "uDECODE (dead microcode rowed %s)", a,
                    std::string(ucode::rowName(img_.rowOf(a))).c_str()));
        }
    }
    // A rowed address beyond the allocated region claims activity that
    // the assembler never emitted.
    for (uint32_t a = img_.allocated; a < ucode::ControlStoreSize; ++a) {
        if (img_.info[a].row != Row::None) {
            add("UL002", UAddr(a),
                fmt("unallocated address 0x%04x carries row %s", a,
                    std::string(
                        ucode::rowName(img_.info[a].row)).c_str()));
        }
    }
}

void
Linter::checkDanglingEdges()
{
    for (const auto &[from, to] : cfg_.danglingEdges()) {
        add("UL003", from,
            fmt("word 0x%04x (%s) sequences to invalid address 0x%04x",
                from,
                std::string(ucode::seqName(img_.ops[from].seq)).c_str(),
                to));
    }
}

void
Linter::specEntryNote(UAddr a, bool first, bool indexed,
                      arch::SpecClass cls, const char *what)
{
    auto it = img_.specEntries.find(a);
    if (it == img_.specEntries.end()) {
        add("UL007", a,
            fmt("%s at 0x%04x has no specifier-entry annotation: the "
                "analyzer cannot attribute its dispatches", what, a));
        return;
    }
    const ucode::SpecEntryNote &note = it->second;
    if (note.first != first || note.indexed != indexed ||
        note.cls != cls) {
        add("UL007", a,
            fmt("%s at 0x%04x is annotated (first=%d indexed=%d "
                "class=%s), dispatch table says (first=%d indexed=%d "
                "class=%s)",
                what, a, note.first, note.indexed,
                std::string(arch::specClassName(note.cls)).c_str(),
                first, indexed,
                std::string(arch::specClassName(cls)).c_str()));
    }
    // The row the paper's attribution requires: indexed base calc is
    // shared microcode in the SPEC2-6 region regardless of position
    // (the §5 reporting quirk); otherwise position decides.
    Row want = (!indexed && first) ? Row::Spec1 : Row::Spec26;
    requireRow(a, want, what);
}

void
Linter::checkDispatchTables()
{
    char what[128];
    for (int f = 0; f < 2; ++f) {
        const bool first = f == 1;
        const char *pos = first ? "spec-1" : "spec-2-6";
        for (size_t mi = 0; mi < size_t(SpecMode::NumModes); ++mi) {
            SpecMode m = SpecMode(mi);
            for (size_t bi = 0; bi < size_t(AccessBucket::NumBuckets);
                 ++bi) {
                AccessBucket b = AccessBucket(bi);
                UAddr a = img_.specRoutine[f][mi][bi];
                snprintf(what, sizeof(what), "%s %s/%s routine", pos,
                         specModeName(m), bucketName(b));
                if (!specPairValid(m, b)) {
                    if (a != 0) {
                        add("UL003", a,
                            fmt("%s exists for an impossible "
                                "(mode, access) pair", what));
                    }
                    continue;
                }
                if (!requireInStore("UL004", a, what))
                    continue;
                requireReachable(a, what);
                specEntryNote(a, first, false, specClassFor(m), what);
            }

            // Indexed base-address calculation entries.
            UAddr ia = img_.idxRoutine[f][mi];
            snprintf(what, sizeof(what), "%s indexed %s base calc", pos,
                     specModeName(m));
            if (!specModeIndexable(m)) {
                if (ia != 0) {
                    add("UL003", ia,
                        fmt("%s exists for a non-indexable mode", what));
                }
                continue;
            }
            if (!requireInStore("UL004", ia, what))
                continue;
            requireReachable(ia, what);
            specEntryNote(ia, first, true, specClassFor(m), what);
        }

        for (size_t bi = 0; bi < size_t(AccessBucket::NumBuckets); ++bi) {
            UAddr a = img_.idxTail[f][bi];
            snprintf(what, sizeof(what), "%s post-index %s tail", pos,
                     bucketName(AccessBucket(bi)));
            if (!requireInStore("UL004", a, what))
                continue;
            requireReachable(a, what);
        }

        UAddr rf = img_.regFieldRoutine[f];
        snprintf(what, sizeof(what), "%s register-field routine", pos);
        if (requireInStore("UL004", rf, what)) {
            requireReachable(rf, what);
            specEntryNote(rf, first, false, arch::SpecClass::Register,
                          what);
        }

        UAddr iq = img_.immQuadRoutine[f];
        snprintf(what, sizeof(what), "%s quad-immediate routine", pos);
        if (requireInStore("UL004", iq, what)) {
            requireReachable(iq, what);
            specEntryNote(iq, first, false, arch::SpecClass::Immediate,
                          what);
        }
    }
}

void
Linter::checkExecTables()
{
    char what[128];
    for (unsigned b = 0; b < 256; ++b) {
        const arch::OpcodeInfo &info =
            arch::opcodeInfo(static_cast<uint8_t>(b));
        for (int alt = 0; alt < 2; ++alt) {
            UAddr a = alt ? img_.execEntryRegAlt[b] : img_.execEntry[b];
            snprintf(what, sizeof(what), "%s execute entry for %s (0x%02x)",
                     alt ? "fast-path" : "primary",
                     info.valid() ? std::string(info.mnemonic).c_str()
                                  : "undefined opcode",
                     b);
            if (!info.valid()) {
                if (a != 0) {
                    add("UL003", a,
                        fmt("%s: undefined opcodes must not dispatch",
                            what));
                }
                continue;
            }
            if (a == 0) {
                // Only the primary entry is mandatory; the register
                // fast path is an optimization of some routines.
                if (!alt) {
                    add("UL004", 0, fmt("%s is missing", what));
                }
                continue;
            }
            if (!requireInStore("UL004", a, what))
                continue;
            requireReachable(a, what);

            auto it = img_.execEntries.find(a);
            if (it == img_.execEntries.end()) {
                add("UL007", a,
                    fmt("%s at 0x%04x has no execute-entry annotation",
                        what, a));
                continue;
            }
            const ucode::ExecEntryNote &note = it->second;
            if (note.group != info.group) {
                add("UL007", a,
                    fmt("%s at 0x%04x is annotated group %s, opcode "
                        "table says %s",
                        what, a,
                        std::string(
                            arch::groupName(note.group)).c_str(),
                        std::string(
                            arch::groupName(info.group)).c_str()));
            }
            // A branch-format routine consumes its displacement at the
            // entry word; the annotation must agree or the analyzer's
            // displacement accounting drifts.
            const bool pulls_disp =
                img_.ops[a].ib == Ib::GetBranchDisp;
            if (note.branchFormat != pulls_disp) {
                add("UL007", a,
                    fmt("%s at 0x%04x: branchFormat=%d but the entry "
                        "word %s a branch displacement",
                        what, a, note.branchFormat,
                        pulls_disp ? "consumes" : "does not consume"));
            }
            requireRow(a, ucode::execRowFor(info.group), what);
        }
    }
}

void
Linter::checkMemRowConflicts()
{
    for (UAddr a = 1; a < img_.allocated; ++a) {
        if (img_.ops[a].mem == Mem::None)
            continue;
        Row r = img_.rowOf(a);
        if (r == Row::Decode || r == Row::BDisp || r == Row::Abort) {
            add("UL005", a,
                fmt("word 0x%04x issues memory function %s but claims "
                    "compute-only row %s", a,
                    std::string(ucode::memName(img_.ops[a].mem)).c_str(),
                    std::string(ucode::rowName(r)).c_str()));
        }
    }
}

void
Linter::checkIbStallWords()
{
    const ucode::Landmarks &mk = img_.marks;
    struct Stall
    {
        UAddr addr;
        const char *name;
    };
    const Stall stalls[] = {
        {mk.ibStallDecode, "IB-stall (opcode)"},
        {mk.ibStallSpec1, "IB-stall (spec 1)"},
        {mk.ibStallSpec26, "IB-stall (spec 2-6)"},
        {mk.ibStallBdisp, "IB-stall (b-disp)"},
    };

    // Pairwise distinct: each stall context is a separate Table 8 cell.
    for (size_t i = 0; i < std::size(stalls); ++i) {
        for (size_t j = i + 1; j < std::size(stalls); ++j) {
            if (stalls[i].addr != 0 && stalls[i].addr == stalls[j].addr) {
                add("UL006", stalls[i].addr,
                    fmt("%s and %s share address 0x%04x: their stall "
                        "cycles cannot be told apart", stalls[i].name,
                        stalls[j].name, stalls[i].addr));
            }
        }
    }

    // Each stall word must be uniquely the "insufficient bytes"
    // microinstruction: a pure no-op that is neither another landmark
    // nor a dispatch entry nor an annotated address — any aliasing
    // folds real work into the IB-stall column.
    for (const Stall &s : stalls) {
        if (!inStore(s.addr))
            continue;  // UL004 from checkLandmarks
        const ucode::MicroOp &op = img_.ops[s.addr];
        if (op.dp != ucode::Dp::Nop || op.mem != Mem::None ||
            op.ib != Ib::None) {
            add("UL006", s.addr,
                fmt("%s word 0x%04x is not a pure no-op (dp=%s mem=%s "
                    "ib=%s)", s.name, s.addr,
                    std::string(ucode::dpName(op.dp)).c_str(),
                    std::string(ucode::memName(op.mem)).c_str(),
                    std::string(ucode::ibName(op.ib)).c_str()));
        }
        const UAddr others[] = {mk.decode, mk.abort, mk.tbMissD,
                                mk.tbMissI, mk.intDispatch,
                                mk.machineCheck, mk.halted};
        for (UAddr o : others) {
            if (s.addr == o) {
                add("UL006", s.addr,
                    fmt("%s word 0x%04x aliases another landmark",
                        s.name, s.addr));
            }
        }
        const auto &fan = cfg_.dispatchFanout();
        if (std::binary_search(fan.begin(), fan.end(), s.addr)) {
            add("UL006", s.addr,
                fmt("%s word 0x%04x is also a dispatch entry", s.name,
                    s.addr));
        }
        if (img_.specEntries.count(s.addr) ||
            img_.execEntries.count(s.addr) ||
            img_.takenEntries.count(s.addr)) {
            add("UL006", s.addr,
                fmt("%s word 0x%04x carries an analyzer annotation",
                    s.name, s.addr));
        }
    }
}

void
Linter::checkAnnotationKeys()
{
    // Every specifier-entry annotation must be the target of some
    // dispatch-table slot; a stale key would make the analyzer count
    // dispatches that cannot happen.
    std::unordered_set<UAddr> spec_targets;
    for (int f = 0; f < 2; ++f) {
        for (size_t mi = 0; mi < size_t(SpecMode::NumModes); ++mi) {
            for (size_t bi = 0; bi < size_t(AccessBucket::NumBuckets);
                 ++bi)
                spec_targets.insert(img_.specRoutine[f][mi][bi]);
            spec_targets.insert(img_.idxRoutine[f][mi]);
        }
        spec_targets.insert(img_.regFieldRoutine[f]);
        spec_targets.insert(img_.immQuadRoutine[f]);
    }
    for (const auto &[a, note] : img_.specEntries) {
        if (!spec_targets.count(a)) {
            add("UL007", a,
                fmt("stale specifier-entry annotation at 0x%04x: no "
                    "dispatch-table slot targets it", a));
        }
    }

    std::unordered_set<UAddr> exec_targets;
    for (unsigned b = 0; b < 256; ++b) {
        exec_targets.insert(img_.execEntry[b]);
        exec_targets.insert(img_.execEntryRegAlt[b]);
    }
    for (const auto &[a, note] : img_.execEntries) {
        if (!exec_targets.count(a)) {
            add("UL007", a,
                fmt("stale execute-entry annotation at 0x%04x: no "
                    "opcode dispatches to it", a));
        }
    }

    // One address, one attribution: an address in several annotation
    // maps (or annotating a landmark) is counted by several analyzer
    // tables at once.
    const ucode::Landmarks &mk = img_.marks;
    const UAddr landmark_addrs[] = {
        mk.decode, mk.ibStallDecode, mk.ibStallSpec1, mk.ibStallSpec26,
        mk.ibStallBdisp, mk.abort, mk.tbMissD, mk.tbMissI,
        mk.intDispatch, mk.machineCheck, mk.halted};
    auto is_landmark = [&](UAddr a) {
        return std::find(std::begin(landmark_addrs),
                         std::end(landmark_addrs), a) !=
               std::end(landmark_addrs);
    };

    std::unordered_map<UAddr, int> uses;
    for (const auto &[a, n] : img_.specEntries)
        ++uses[a];
    for (const auto &[a, n] : img_.execEntries)
        ++uses[a];
    for (const auto &[a, n] : img_.takenEntries)
        ++uses[a];
    for (const auto &[a, n] : uses) {
        if (n > 1) {
            add("UL008", a,
                fmt("address 0x%04x carries %d annotations: the "
                    "analyzer would double-count its executions", a, n));
        }
        if (is_landmark(a)) {
            add("UL008", a,
                fmt("landmark address 0x%04x also carries an "
                    "annotation: its cycles would be counted twice",
                    a));
        }
    }
}

void
Linter::checkTakenEntries()
{
    for (const auto &[a, cls] : img_.takenEntries) {
        if (!requireInStore("UL007", a, "taken-branch annotation"))
            continue;
        if (img_.ops[a].dp != ucode::Dp::TakeBranch) {
            add("UL007", a,
                fmt("taken-branch annotation at 0x%04x does not sit on "
                    "a TakeBranch microword (dp=%s)", a,
                    std::string(
                        ucode::dpName(img_.ops[a].dp)).c_str()));
        }
        if (cls == PcClass::None) {
            add("UL007", a,
                fmt("taken-branch annotation at 0x%04x has no "
                    "PC-change class", a));
        }
        if (!cfg_.reachable(a)) {
            add("UL004", a,
                fmt("taken-branch word 0x%04x is not reachable", a));
        }
    }
}

namespace
{

/** "compute/read" style list of the classes in @p m. */
std::string
classList(ClassMask m)
{
    std::string s;
    for (size_t c = 0; c < size_t(CycleClass::NumClasses); ++c) {
        if (!(m & classBit(CycleClass(c))))
            continue;
        if (!s.empty())
            s += '/';
        s += cycleClassName(CycleClass(c));
    }
    return s.empty() ? "none" : s;
}

/** Comma-separated obs event names for the counters in @p m. */
std::string
counterList(CounterMask m)
{
    std::string s;
    for (uint32_t e = 0; e < obs::NumEvents; ++e) {
        if (!(m & counterBit(obs::Ev(e))))
            continue;
        if (!s.empty())
            s += ", ";
        s += obs::evName(obs::Ev(e));
    }
    return s.empty() ? "none" : s;
}

} // namespace

void
Linter::checkDecodedRows()
{
    // The structural audit (verbatim copy, handler agreement, pad
    // run-length chains) lives next to the decoder so the registry
    // and the linter can never drift apart on what "faithful" means.
    std::shared_ptr<const ucode::DecodedImage> dec =
        ucode::decodedImage(img_);
    for (const std::string &f : ucode::verifyDecoded(img_, *dec))
        add("UL016", 0, f);

    // Cross-check the decoded static cycle class against the effects
    // map: the threaded dispatcher files read/write cycles by the
    // row's memRead/memWrite bits, the analyzer by the effects-map
    // class. If they disagree, the two dispatchers would split Table 8
    // columns differently for the same trajectory.
    for (UAddr a = 1; a < img_.allocated; ++a) {
        if (!cfg_.reachable(a))
            continue;
        const ucode::DecodedRow &row = dec->rows[a];
        const WordEffects &w = fx_.at(a);
        const bool rd = (w.candidates & classBit(CycleClass::Read)) != 0;
        const bool wr = (w.candidates & classBit(CycleClass::Write)) != 0;
        if ((row.memRead != 0) != rd || (row.memWrite != 0) != wr) {
            add("UL016", a,
                fmt("word 0x%04x: decoded row files cycles as %s/%s "
                    "but the effects map classes it %s/%s",
                    a, row.memRead ? "read" : "-",
                    row.memWrite ? "write" : "-", rd ? "read" : "-",
                    wr ? "write" : "-"));
        }
    }
}

void
Linter::checkCycleClasses()
{
    for (UAddr a = 1; a < img_.allocated; ++a) {
        if (!cfg_.reachable(a))
            continue;
        const WordEffects &w = fx_.at(a);

        int ncand = 0;
        for (size_t c = 0; c < size_t(CycleClass::NumClasses); ++c)
            if (w.candidates & classBit(CycleClass(c)))
                ++ncand;
        if (ncand != 1) {
            add("UL013", a,
                fmt("word 0x%04x matches %d cycle classes (%s): its "
                    "histogram cycles cannot be filed in one Table 8 "
                    "column", a, ncand,
                    classList(w.candidates).c_str()));
        }

        // An unrowed word is UL001's finding; judging its class
        // against an empty allowed set would only cascade.
        Row r = img_.rowOf(a);
        if (r == Row::None)
            continue;
        if (!(classBit(w.cls) & EffectMap::allowedClasses(r))) {
            add("UL013", a,
                fmt("word 0x%04x has cycle class %s, which row %s does "
                    "not admit (allowed: %s)", a,
                    std::string(cycleClassName(w.cls)).c_str(),
                    std::string(ucode::rowName(r)).c_str(),
                    classList(EffectMap::allowedClasses(r)).c_str()));
        }
    }
}

void
Linter::checkCounterEffects()
{
    CounterMask coverage = 0;
    for (UAddr a = 1; a < img_.allocated; ++a) {
        if (!cfg_.reachable(a))
            continue;
        const WordEffects &w = fx_.at(a);
        coverage |= w.counters;

        Row r = img_.rowOf(a);
        if (r == Row::None)
            continue;  // UL001's finding; the row has no counter set
        CounterMask excess = w.counters & ~EffectMap::allowedCounters(r);
        if (excess) {
            add("UL014", a,
                fmt("word 0x%04x can bump counters row %s cannot "
                    "generate: %s", a,
                    std::string(ucode::rowName(r)).c_str(),
                    counterList(excess).c_str()));
        }
    }

    // Every counter the analyzer's cross-checks consume must have at
    // least one reachable producer, or the dynamic audit for it is
    // vacuous.
    const obs::Ev core[] = {
        obs::Ev::IboxDecodes,        obs::Ev::EboxUops,
        obs::Ev::EboxIbStallCycles,  obs::Ev::EboxStallCycles,
        obs::Ev::EboxAborts,         obs::Ev::EboxHaltCycles,
        obs::Ev::EboxMemReadCycles,  obs::Ev::EboxMemWriteCycles,
        obs::Ev::TbMissServicesD,    obs::Ev::TbMissServicesI,
        obs::Ev::IrqDispatches,      obs::Ev::MachineChecks,
    };
    for (obs::Ev e : core) {
        if (!(coverage & counterBit(e))) {
            add("UL015", 0,
                fmt("no reachable word can generate counter %s: the "
                    "dynamic attribution check for it is vacuous",
                    std::string(obs::evName(e)).c_str()));
        }
    }
}

void
Linter::checkDataflow()
{
    const uint32_t n = img_.allocated;
    std::vector<RegEffects> fx(n);
    for (UAddr a = 1; a < n; ++a)
        fx[a] = regEffects(img_.ops[a]);

    // ---- UL010: dead pure writes. Backward liveness (union meet)
    // over the full CFG: over-approximated successors can only keep
    // more values live, so a write this analysis calls dead is dead
    // under every path the hardware can actually take.
    Problem live;
    live.dir = Direction::Backward;
    live.meet = Meet::Union;
    live.top = 0;
    live.gen.resize(n, 0);
    live.kill.resize(n, 0);
    for (UAddr a = 1; a < n; ++a) {
        live.gen[a] = fx[a].liveUse();
        live.kill[a] = fx[a].defMust();
    }
    Solution lv = solve(cfg_, live);
    if (!lv.converged) {
        add("UL010", 0,
            fmt("liveness did not reach a fixpoint after %u steps",
                lv.steps));
    } else {
        for (UAddr a = 1; a < n; ++a) {
            if (!cfg_.reachable(a) || !fx[a].pureDef)
                continue;
            const RegMask later = fx[a].useMem | fx[a].usePost;
            RegMask dead = fx[a].defPre & ~later & ~lv.out[a];
            for (size_t r = 0; r < NumMRegs; ++r) {
                if (!(dead & regBit(MReg(r))))
                    continue;
                add("UL010", a,
                    fmt("word 0x%04x writes %s, but the value is "
                        "overwritten on every path before any use: a "
                        "dead setup cycle in the attribution", a,
                        std::string(mregName(MReg(r))).c_str()));
            }
        }
    }

    // ---- UL011: certain reads no write can reach. Forward reaching
    // definitions (union meet) over the *sequential* sub-CFG —
    // dispatch and implied edges cut, so facts cannot leak between
    // routines through the dispatch over-approximation. May-defs
    // count as reaching (an Exec step is allowed to be the producer);
    // a certain read that not even a may-def reaches is wrong on
    // every path the hardware can take.
    std::vector<std::vector<UAddr>> seq(n);
    const ucode::Landmarks &mk = img_.marks;
    auto fabricated = [&](UAddr a) {
        return a == mk.abort || a == mk.ibStallDecode ||
               a == mk.ibStallSpec1 || a == mk.ibStallSpec26 ||
               a == mk.ibStallBdisp;
    };
    for (UAddr a = 1; a < n; ++a) {
        if (fabricated(a))
            continue;
        const ucode::MicroOp &op = img_.ops[a];
        auto to = [&](UAddr t) {
            if (t != 0 && t < n)
                seq[a].push_back(t);
        };
        switch (op.seq) {
          case Seq::Next:
            to(UAddr(a + 1));
            break;
          case Seq::Jump:
            to(op.target);
            break;
          case Seq::Call:
            to(op.target);
            to(UAddr(a + 1));
            break;
          case Seq::JumpIfFlag:
          case Seq::JumpIfNotFlag:
            to(op.target);
            to(UAddr(a + 1));
            break;
          case Seq::DecodeNextIfNotFlag:
            to(UAddr(a + 1));
            break;
          default:
            break;
        }
    }

    Problem reach;
    reach.dir = Direction::Forward;
    reach.meet = Meet::Union;
    reach.top = 0;
    reach.gen.resize(n, 0);
    reach.kill.resize(n, 0);
    for (UAddr a = 1; a < n; ++a)
        reach.gen[a] = fx[a].defMay;

    // Entry contract: the hardware enters a post-index tail only after
    // the indexed base calculation (and its SpecIndexAdd) has loaded
    // TADDR, and the tails have no sequential predecessors to carry
    // that fact in.
    for (int f = 0; f < 2; ++f)
        for (size_t b = 0; b < size_t(AccessBucket::NumBuckets); ++b)
            if (UAddr t = img_.idxTail[f][b]; t != 0 && t < n)
                reach.boundaries.emplace_back(t, regBit(MReg::Taddr));

    Solution md = solve(seq, reach);
    if (!md.converged) {
        add("UL011", 0,
            fmt("reaching definitions did not reach a fixpoint after "
                "%u steps", md.steps));
        return;
    }
    for (UAddr a = 1; a < n; ++a) {
        if (!cfg_.reachable(a))
            continue;
        const RegEffects &e = fx[a];
        RegMask have = md.in[a];
        RegMask missing = e.usePreSure & ~have;
        have |= e.defPre;
        missing |= e.useMem & ~have;
        have |= e.defMem;
        missing |= e.usePostSure & ~have;
        for (size_t r = 0; r < NumMRegs; ++r) {
            if (!(missing & regBit(MReg(r))))
                continue;
            add("UL011", a,
                fmt("word 0x%04x reads %s, but no write of it can "
                    "reach this word", a,
                    std::string(mregName(MReg(r))).c_str()));
        }
        // Intra-word bus conflict: the datapath drives a register and
        // the word's own memory function overwrites it before any
        // stage reads it.
        RegMask clobber = e.defPre & e.defMem & ~e.useMem;
        for (size_t r = 0; r < NumMRegs; ++r) {
            if (!(clobber & regBit(MReg(r))))
                continue;
            add("UL011", a,
                fmt("bus conflict: word 0x%04x drives %s and its "
                    "memory function overwrites it in the same cycle",
                    a, std::string(mregName(MReg(r))).c_str()));
        }
    }
}

void
Linter::checkCutReachability()
{
    const uint32_t n = img_.allocated;
    std::vector<bool> flagged(n, false);
    bool any = false;
    for (const Finding &f : rep_.findings) {
        if (f.addr != 0 && f.addr < n) {
            flagged[f.addr] = true;
            any = true;
        }
    }
    if (!any)
        return;
    const UAddr root = img_.marks.decode;
    // A flagged (or missing) root would make every word trivially
    // tainted; the root's own finding already says it all.
    if (root == 0 || root >= n || flagged[root])
        return;

    std::vector<bool> ok(n, false);
    std::vector<UAddr> work{root};
    ok[root] = true;
    while (!work.empty()) {
        UAddr a = work.back();
        work.pop_back();
        for (UAddr t : cfg_.successors(a)) {
            if (!ok[t] && !flagged[t]) {
                ok[t] = true;
                work.push_back(t);
            }
        }
    }
    for (UAddr a = 1; a < n; ++a) {
        if (cfg_.reachable(a) && !flagged[a] && !ok[a]) {
            add("UL012", a,
                fmt("word 0x%04x is reachable only through flagged "
                    "words: its attribution inherits their defects",
                    a));
        }
    }
}

} // namespace

Report
lint(const MicrocodeImage &image)
{
    return Linter(image).run();
}

std::vector<UAddr>
flaggedAddresses(const Report &report)
{
    std::vector<UAddr> v;
    for (const Finding &f : report.findings)
        if (f.addr != 0)
            v.push_back(f.addr);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

std::string
Report::toText() const
{
    std::string out;
    for (const Finding &f : findings) {
        out += fmt("%s %s @0x%04x [%s] %s\n", f.rule.c_str(),
                   std::string(severityName(f.severity)).c_str(), f.addr,
                   std::string(ucode::rowName(f.row)).c_str(),
                   f.detail.c_str());
    }
    out += fmt("%u words checked, %u reachable, %zu finding%s\n",
               wordsChecked, reachableWords, findings.size(),
               findings.size() == 1 ? "" : "s");
    return out;
}

std::string
Report::toJson() const
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    std::string out = "{\n";
    out += fmt("  \"wordsChecked\": %u,\n", wordsChecked);
    out += fmt("  \"reachableWords\": %u,\n", reachableWords);
    out += fmt("  \"clean\": %s,\n", clean() ? "true" : "false");
    out += "  \"findings\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += i ? ",\n    " : "\n    ";
        out += fmt("{\"rule\": \"%s\", \"severity\": \"%s\", "
                   "\"addr\": %u, \"row\": \"%s\", \"detail\": \"%s\"}",
                   f.rule.c_str(),
                   std::string(severityName(f.severity)).c_str(), f.addr,
                   std::string(ucode::rowName(f.row)).c_str(),
                   escape(f.detail).c_str());
    }
    out += findings.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
Report::toSarif() const
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };

    // The rule table lists each distinct rule once, in first-seen
    // order, as SARIF requires results to reference driver rules.
    std::vector<std::string> rules;
    auto ruleIndex = [&](const std::string &r) {
        for (size_t i = 0; i < rules.size(); ++i)
            if (rules[i] == r)
                return i;
        rules.push_back(r);
        return rules.size() - 1;
    };
    std::vector<size_t> index;
    index.reserve(findings.size());
    for (const Finding &f : findings)
        index.push_back(ruleIndex(f.rule));

    std::string out =
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\"name\": \"ulint\", "
        "\"rules\": [";
    for (size_t i = 0; i < rules.size(); ++i) {
        out += i ? ", " : "";
        out += fmt("{\"id\": \"%s\"}", rules[i].c_str());
    }
    out += "]}},\n";
    out += "    \"results\": [";
    for (size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += i ? ",\n      " : "\n      ";
        out += fmt(
            "{\"ruleId\": \"%s\", \"ruleIndex\": %zu, "
            "\"level\": \"%s\", "
            "\"message\": {\"text\": \"%s\"}, "
            "\"locations\": [{\"logicalLocations\": "
            "[{\"name\": \"u0x%04x\", \"fullyQualifiedName\": "
            "\"controlstore/u0x%04x[%s]\", "
            "\"kind\": \"instruction\"}]}]}",
            f.rule.c_str(), index[i],
            f.severity == Severity::Error ? "error" : "warning",
            escape(f.detail).c_str(), f.addr, f.addr,
            std::string(ucode::rowName(f.row)).c_str());
    }
    out += findings.empty() ? "]\n" : "\n    ]\n";
    out += "  }]\n}\n";
    return out;
}

} // namespace upc780::ulint
