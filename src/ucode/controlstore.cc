#include "ucode/controlstore.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace upc780::ucode
{

std::string_view
rowName(Row r)
{
    switch (r) {
      case Row::None:
        return "(none)";
      case Row::Decode:
        return "Decode";
      case Row::Spec1:
        return "SPEC1";
      case Row::Spec26:
        return "SPEC2-6";
      case Row::BDisp:
        return "B-DISP";
      case Row::ExSimple:
        return "Simple";
      case Row::ExField:
        return "Field";
      case Row::ExFloat:
        return "Float";
      case Row::ExCallRet:
        return "Call/Ret";
      case Row::ExSystem:
        return "System";
      case Row::ExCharacter:
        return "Character";
      case Row::ExDecimal:
        return "Decimal";
      case Row::IntExcept:
        return "Int/Except";
      case Row::MemMgmt:
        return "Mem Mgmt";
      case Row::Abort:
        return "Abort";
      default:
        return "?";
    }
}

Row
execRowFor(arch::Group g)
{
    switch (g) {
      case arch::Group::Simple:
        return Row::ExSimple;
      case arch::Group::Field:
        return Row::ExField;
      case arch::Group::Float:
        return Row::ExFloat;
      case arch::Group::CallRet:
        return Row::ExCallRet;
      case arch::Group::System:
        return Row::ExSystem;
      case arch::Group::Character:
        return Row::ExCharacter;
      case arch::Group::Decimal:
        return Row::ExDecimal;
      default:
        panic("execRowFor: bad group");
    }
}

SpecMode
specModeFor(arch::AddrMode m)
{
    using arch::AddrMode;
    switch (m) {
      case AddrMode::Literal:
        return SpecMode::Lit;
      case AddrMode::Register:
        return SpecMode::Reg;
      case AddrMode::RegDeferred:
        return SpecMode::RegDef;
      case AddrMode::AutoIncr:
        return SpecMode::AutoInc;
      case AddrMode::AutoIncrDeferred:
        return SpecMode::AutoIncDef;
      case AddrMode::AutoDecr:
        return SpecMode::AutoDec;
      case AddrMode::Immediate:
        return SpecMode::Imm;
      case AddrMode::Absolute:
        return SpecMode::Abs;
      case AddrMode::DispByte:
      case AddrMode::DispWord:
      case AddrMode::DispLong:
        return SpecMode::Disp;
      case AddrMode::DispByteDeferred:
      case AddrMode::DispWordDeferred:
      case AddrMode::DispLongDeferred:
        return SpecMode::DispDef;
    }
    panic("specModeFor: bad mode");
}

AccessBucket
accessBucketFor(arch::Access a)
{
    using arch::Access;
    switch (a) {
      case Access::Read:
        return AccessBucket::Read;
      case Access::Write:
        return AccessBucket::Write;
      case Access::Modify:
        return AccessBucket::Modify;
      case Access::Address:
      case Access::Field:
        return AccessBucket::Addr;
      default:
        panic("accessBucketFor: branch displacement is not a specifier");
    }
}

std::string_view
dpName(Dp d)
{
    switch (d) {
      case Dp::Nop: return "nop";
      case Dp::SpecLoadReg: return "spec.ldreg";
      case Dp::SpecLoadRegDisp: return "spec.ldregdisp";
      case Dp::SpecLoadAbs: return "spec.ldabs";
      case Dp::SpecAutoInc: return "spec.autoinc";
      case Dp::SpecAutoDec: return "spec.autodec";
      case Dp::SpecIndexBase: return "spec.idxbase";
      case Dp::SpecIndexAdd: return "spec.idxadd";
      case Dp::MdrToTaddr: return "mdr->taddr";
      case Dp::OperandFromReg: return "opnd.reg";
      case Dp::OperandFromLit: return "opnd.lit";
      case Dp::OperandFromImm: return "opnd.imm";
      case Dp::OperandImmHigh: return "opnd.immhi";
      case Dp::OperandFromMdr: return "opnd.mdr";
      case Dp::OperandAddr: return "opnd.addr";
      case Dp::RegWriteSpec: return "spec.wreg";
      case Dp::WriteResult: return "wres";
      case Dp::Exec: return "exec";
      case Dp::ExecStep: return "exec.step";
      case Dp::LoopDec: return "loopdec";
      case Dp::ModifyWriteback: return "mod.wb";
      case Dp::BranchTarget: return "brtgt";
      case Dp::TakeBranch: return "take";
      case Dp::TbComputePte: return "tb.pte";
      case Dp::TbFill: return "tb.fill";
      case Dp::IntPushPc: return "int.pushpc";
      case Dp::IntPushPsl: return "int.pushpsl";
      case Dp::IntVector: return "int.vector";
      case Dp::IntEnter: return "int.enter";
      case Dp::McheckPushCode: return "mchk.pushcode";
      case Dp::OsAssist: return "os.assist";
      case Dp::Halt: return "halt";
    }
    return "?";
}

std::string_view
memName(Mem m)
{
    switch (m) {
      case Mem::None: return "-";
      case Mem::ReadV: return "rdv";
      case Mem::WriteV: return "wrv";
      case Mem::ReadP: return "rdp";
    }
    return "?";
}

std::string_view
ibName(Ib i)
{
    switch (i) {
      case Ib::None: return "-";
      case Ib::DecodeOp: return "decop";
      case Ib::DecodeSpec: return "decspec";
      case Ib::GetImmHigh: return "immhi";
      case Ib::GetBranchDisp: return "brdisp";
    }
    return "?";
}

namespace
{

/** FNV-1a, local copy (ucode must not depend on the snapshot layer). */
struct Fnv
{
    uint64_t h = 1469598103934665603ull;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

uint64_t
computeImageHash(const MicrocodeImage &img)
{
    Fnv f;
    f.mix(img.allocated);
    for (uint32_t a = 0; a < img.allocated; ++a) {
        const MicroOp &op = img.ops[a];
        f.mix(static_cast<uint64_t>(op.dp));
        f.mix(static_cast<uint64_t>(op.mem));
        f.mix(static_cast<uint64_t>(op.ib));
        f.mix(static_cast<uint64_t>(op.seq));
        f.mix(op.target);
        f.mix(op.arg);
        f.mix(static_cast<uint64_t>(img.info[a].row));
    }
    const Landmarks &m = img.marks;
    for (UAddr a : {m.decode, m.ibStallDecode, m.ibStallSpec1,
                    m.ibStallSpec26, m.ibStallBdisp, m.abort, m.tbMissD,
                    m.tbMissI, m.intDispatch, m.machineCheck, m.halted})
        f.mix(a);
    return f.h;
}

} // namespace

uint64_t
imageContentHash(const MicrocodeImage &img)
{
    static std::mutex mu;
    static std::map<const MicrocodeImage *, uint64_t> cache;

    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(&img);
    if (it != cache.end())
        return it->second;
    const uint64_t h = computeImageHash(img);
    cache.emplace(&img, h);
    return h;
}

std::string_view
seqName(Seq s)
{
    switch (s) {
      case Seq::Next: return "next";
      case Seq::Jump: return "jump";
      case Seq::Call: return "call";
      case Seq::Return: return "ret";
      case Seq::JumpIfFlag: return "jif";
      case Seq::JumpIfNotFlag: return "jnif";
      case Seq::SpecDispatch: return "specdisp";
      case Seq::DecodeNext: return "decnext";
      case Seq::DecodeNextIfNotFlag: return "decnif";
      case Seq::TrapReturn: return "trapret";
    }
    return "?";
}

} // namespace upc780::ucode
