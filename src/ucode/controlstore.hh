/**
 * @file
 * The control store and its static map. The map assigns every
 * micro-address an *activity row* (the rows of the paper's Table 8)
 * and carries the annotations the offline histogram analyzer uses to
 * derive event frequencies (specifier entries, execute entries,
 * taken-branch entries). This mirrors the paper's method: the raw UPC
 * histogram is interpreted against static knowledge of the microcode.
 */

#ifndef UPC780_UCODE_CONTROLSTORE_HH
#define UPC780_UCODE_CONTROLSTORE_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "arch/opcodes.hh"
#include "arch/specifier.hh"
#include "ucode/uop.hh"

namespace upc780::ucode
{

/** Table 8 activity rows. */
enum class Row : uint8_t
{
    None,        //!< unallocated control store
    Decode,
    Spec1,
    Spec26,
    BDisp,
    ExSimple,
    ExField,
    ExFloat,
    ExCallRet,
    ExSystem,
    ExCharacter,
    ExDecimal,
    IntExcept,
    MemMgmt,
    Abort,
    NumRows,
};

/** Row label as printed in Table 8. */
std::string_view rowName(Row r);

/** The execute row for an opcode group. */
Row execRowFor(arch::Group g);

/** Static per-address metadata. */
struct UAddrInfo
{
    Row row = Row::None;
};

/** Specifier-routine modes the dispatch hardware distinguishes. */
enum class SpecMode : uint8_t
{
    Lit,
    Reg,
    RegDef,
    AutoInc,
    AutoIncDef,
    AutoDec,
    Disp,
    DispDef,
    Abs,
    Imm,
    NumModes,
};

/** Map an architectural addressing mode to its routine family. */
SpecMode specModeFor(arch::AddrMode m);

/** Access buckets the specifier routines are specialized on. */
enum class AccessBucket : uint8_t
{
    Read,
    Write,
    Modify,
    Addr,  //!< address/field access: compute address only
    NumBuckets,
};

/** Map an operand access class to its routine bucket. */
AccessBucket accessBucketFor(arch::Access a);

/** Annotation on a specifier-routine entry micro-address. */
struct SpecEntryNote
{
    bool first = false;             //!< SPEC1 vs SPEC2-6
    arch::SpecClass cls = arch::SpecClass::Register;
    bool indexed = false;           //!< index-prefix calc entry
};

/** Annotation on an execute-routine entry micro-address. */
struct ExecEntryNote
{
    arch::Group group = arch::Group::Simple;
    arch::PcClass pcClass = arch::PcClass::None;
    bool branchFormat = false;      //!< consumes a branch displacement
};

/** Well-known micro-addresses. */
struct Landmarks
{
    UAddr decode = 0;        //!< the IRD microinstruction (1/instr)
    UAddr ibStallDecode = 0; //!< IB stall awaiting the opcode byte
    UAddr ibStallSpec1 = 0;  //!< IB stall awaiting a first specifier
    UAddr ibStallSpec26 = 0; //!< IB stall awaiting a later specifier
    UAddr ibStallBdisp = 0;  //!< IB stall awaiting a branch disp
    UAddr abort = 0;         //!< one cycle per microtrap
    UAddr tbMissD = 0;       //!< D-stream TB miss service entry
    UAddr tbMissI = 0;       //!< I-stream TB miss service entry
    UAddr intDispatch = 0;   //!< interrupt/exception dispatch entry
    UAddr machineCheck = 0;  //!< machine-check dispatch entry
    UAddr halted = 0;        //!< resting place after HALT
};

/**
 * The assembled microprogram: control words, the static map, the
 * decode dispatch tables, and the analyzer annotations.
 */
struct MicrocodeImage
{
    std::array<MicroOp, ControlStoreSize> ops{};
    std::array<UAddrInfo, ControlStoreSize> info{};
    Landmarks marks;

    /** [first][SpecMode][AccessBucket] -> routine entry (0 invalid). */
    UAddr specRoutine[2][size_t(SpecMode::NumModes)]
                     [size_t(AccessBucket::NumBuckets)] = {};

    /** Field access (.v) with register mode, [first]. */
    UAddr regFieldRoutine[2] = {};

    /** Quad/double immediate routine (two I-stream pulls), [first]. */
    UAddr immQuadRoutine[2] = {};

    /**
     * Indexed-specifier base-calculation entries, [first][base
     * SpecMode]. All live in the SPEC2-6 region: the 780 shares the
     * base-address microcode, which is why the paper reports indexed
     * first-specifier base calc under SPEC2-6 (§5).
     */
    UAddr idxRoutine[2][size_t(SpecMode::NumModes)] = {};

    /** Post-index access tails, [first][AccessBucket]. */
    UAddr idxTail[2][size_t(AccessBucket::NumBuckets)] = {};

    /** Per-opcode execute entry (0 = not implemented). */
    std::array<UAddr, 256> execEntry{};

    /**
     * Register-operand fast-path execute entry (0 = none). The real
     * microcode has separate paths for register and memory modify
     * destinations (and register vs memory bit-field bases); decode
     * dispatch selects between them, so a register-destination ADDL2
     * never touches the memory-writeback microword.
     */
    std::array<UAddr, 256> execEntryRegAlt{};

    /** Analyzer annotations. */
    std::unordered_map<UAddr, SpecEntryNote> specEntries;
    std::unordered_map<UAddr, ExecEntryNote> execEntries;
    /** BranchTarget micro-ops, keyed by address -> PC-change class. */
    std::unordered_map<UAddr, arch::PcClass> takenEntries;

    /** Number of allocated control-store words. */
    uint32_t allocated = 0;

    const MicroOp &at(UAddr a) const { return ops[a]; }
    Row rowOf(UAddr a) const { return info[a].row; }
};

/**
 * Build (once) and return the complete 780 microprogram. The image is
 * immutable after construction; every CPU instance shares it.
 */
const MicrocodeImage &microcodeImage();

/**
 * The same microprogram assembled for a machine *without* the
 * Floating Point Accelerator: float execute routines carry the base
 * machine's serial fraction-arithmetic cycle counts. Identical
 * layout up to the execute region; all landmarks coincide with the
 * FPA image's.
 */
const MicrocodeImage &microcodeImageNoFpa();

/**
 * Content fingerprint of a microprogram: a 64-bit FNV-1a over every
 * allocated control word (all five micro-op fields), the static row
 * map and the landmark set — everything that shapes what a machine
 * running this image *does* and how its cycles are attributed. Two
 * images with equal hashes execute identically for cache purposes;
 * the experiment daemon folds this into its content-addressed result
 * key, so a result computed under one image is never served for
 * another (a defective lint-test copy hashes differently from the
 * shipped image it was cloned from).
 *
 * Images are immutable after assembly (see microcodeImage), so the
 * hash is computed once per image and memoized in a registry keyed on
 * the image's identity — the same shared-immutable pattern as the
 * pre-decoded store (ucode/decoded.hh). Thread-safe.
 */
uint64_t imageContentHash(const MicrocodeImage &img);

// ----- debug/listing helpers ------------------------------------------

/** Mnemonic for a datapath function (microprogram listings). */
std::string_view dpName(Dp d);
/** Mnemonic for a memory function. */
std::string_view memName(Mem m);
/** Mnemonic for an I-Decode function. */
std::string_view ibName(Ib i);
/** Mnemonic for a sequencing control. */
std::string_view seqName(Seq s);

} // namespace upc780::ucode

#endif // UPC780_UCODE_CONTROLSTORE_HH
