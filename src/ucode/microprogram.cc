/**
 * @file
 * The complete microprogram of the modeled VAX-11/780, assembled once
 * at startup into an immutable MicrocodeImage.
 *
 * Layout philosophy follows the real machine closely enough for the
 * paper's measurement technique to work unchanged:
 *  - one IRD (decode) microinstruction executed exactly once per
 *    instruction;
 *  - dedicated "insufficient bytes" microinstructions per decode
 *    context, whose execution counts are the IB-stall cycles;
 *  - shared operand-specifier routines, with separate copies for the
 *    first specifier (SPEC1) and later specifiers (SPEC2-6), and the
 *    indexed base-address calculation shared in the SPEC2-6 region
 *    (reproducing the paper's reporting quirk, §5);
 *  - per-opcode execute routines, shared between opcodes wherever the
 *    real microcode shared them (e.g. all simple conditional branches
 *    plus BRB/BRW are one routine, §3.1);
 *  - microtrap service routines for TB misses (Mem Mgmt row), an
 *    interrupt/exception dispatch flow (Int/Except row), and a
 *    one-cycle Abort word charged per microtrap.
 */

#include "ucode/controlstore.hh"

#include <initializer_list>
#include <vector>

#include "common/logging.hh"
#include "ucode/execphase.hh"
#include "ucode/uasm.hh"

namespace upc780::ucode
{

namespace
{

using arch::Access;
using arch::Group;
using arch::Op;
using arch::OpcodeInfo;
using arch::PcClass;
using arch::SpecClass;

/** Extra compute (pad) cycles of the execute phase, per opcode set. */
struct ExecCost
{
    uint32_t MulInt = 14;
    uint32_t DivInt = 22;
    uint32_t Emul = 16;
    uint32_t Ediv = 24;
    uint32_t AshL = 2;
    uint32_t AshQ = 4;
    uint32_t Index = 8;
    uint32_t AddF = 6;   //!< with FPA
    uint32_t MulF = 9;
    uint32_t DivF = 16;
    uint32_t CvtF = 6;
    uint32_t MovF = 1;
    uint32_t EmodF = 10;
    uint32_t DFloatExtra = 2;
    uint32_t Field = 12;
    uint32_t Probe = 12;
    uint32_t Mxpr = 6;
    uint32_t Adawi = 2;

    /** Without the Floating Point Accelerator the base microcode
     *  performs the fraction arithmetic serially. */
    static ExecCost
    noFpa()
    {
        ExecCost c;
        c.AddF = 24;
        c.MulF = 45;
        c.DivF = 75;
        c.CvtF = 14;
        c.MovF = 2;
        c.EmodF = 55;
        c.DFloatExtra = 12;
        return c;
    }
};

/** Builds the whole microprogram. */
class Builder
{
  public:
    explicit Builder(const ExecCost &cost = ExecCost{})
        : uasm_(img_), cost_(cost)
    {
        build();
    }

    MicrocodeImage img_;

  private:
    MicroAssembler uasm_;
    ExecCost cost_;

    // Shorthand.
    UAddr emit(const MicroOp &op) { return uasm_.emit(op); }
    void pad(uint32_t n) { uasm_.pad(n); }
    void row(Row r) { uasm_.row(r); }

    void build();
    void buildFixed();
    void buildSpecRegion(bool first);
    void buildIndexed();
    void buildTbMiss(bool istream, UAddr &entry_out);
    void buildIntDispatch();
    void buildMcheckDispatch();
    void buildExec();

    UAddr emitSpecRoutine(bool first, SpecMode m, AccessBucket b);
    void noteSpec(UAddr entry, bool first, SpecClass cls, bool indexed);

    /** Begin an execute routine shared by @p ops; annotates entry. */
    void beginExec(std::initializer_list<Op> ops, bool branch_format);
    /** Register @p entry for all pending opcodes. */
    void setEntries(UAddr entry);
    /** Register the register-operand fast-path entry. */
    void setAltEntries(UAddr entry);

    // Copied out of beginExec's initializer_list: the list's backing
    // array is a temporary that dies with the caller's statement.
    std::vector<Op> pendingOps_;
    bool pendingBranchFormat_ = false;

    // ----- shape emitters -------------------------------------------------
    void exPlain(std::initializer_list<Op> ops, uint32_t pads,
                 bool has_modify);
    void exCondBranch(std::initializer_list<Op> ops, PcClass cls);
    void exLoopBranch(std::initializer_list<Op> ops, PcClass cls,
                      uint32_t pads);
    void exBsb(std::initializer_list<Op> ops);
    void exJsb();
    void exRsb();
    void exJmp();
    void exBitBranch();
    void exCase(std::initializer_list<Op> ops);
    void exPush(std::initializer_list<Op> ops);
    void exMovc(std::initializer_list<Op> ops);
    void exCmpStr(std::initializer_list<Op> ops, bool two_streams);
    void exDecimal(std::initializer_list<Op> ops, uint32_t setup_pads,
                   uint32_t loop_pads, bool writes);
    void exPushr();
    void exPopr();
    void exCall(std::initializer_list<Op> ops);
    void exRet();
    void exChmx(std::initializer_list<Op> ops);
    void exRei();
    void exSvpctx();
    void exLdpctx();
    void exQueue(std::initializer_list<Op> ops, uint32_t writes);
    void exField(std::initializer_list<Op> ops, bool insert);
    void exPoly(std::initializer_list<Op> ops);
    void exCrc();
    void exEditpc();
    void exHalt();
    void exXfc();
};

void
Builder::noteSpec(UAddr entry, bool first, SpecClass cls, bool indexed)
{
    img_.specEntries[entry] = SpecEntryNote{first, cls, indexed};
}

void
Builder::build()
{
    buildFixed();
    buildSpecRegion(true);
    buildSpecRegion(false);
    buildIndexed();
    buildTbMiss(false, img_.marks.tbMissD);
    buildTbMiss(true, img_.marks.tbMissI);
    buildIntDispatch();
    buildMcheckDispatch();
    buildExec();

    // Completeness check: every defined opcode must have an execute
    // entry, or the decode dispatch would fall off the map.
    for (unsigned b = 0; b < 256; ++b) {
        if (arch::opcodeInfo(static_cast<uint8_t>(b)).valid() &&
            img_.execEntry[b] == 0) {
            panic("opcode 0x%02x (%s) has no execute routine", b,
                  std::string(arch::opcodeInfo(
                      static_cast<uint8_t>(b)).mnemonic).c_str());
        }
    }
}

void
Builder::buildFixed()
{
    row(Row::Decode);
    img_.marks.decode =
        emit(uop(Dp::Nop, Mem::None, Ib::DecodeOp, Seq::SpecDispatch));
    img_.marks.ibStallDecode = emit(uop(Dp::Nop));

    row(Row::Spec1);
    img_.marks.ibStallSpec1 = emit(uop(Dp::Nop));
    row(Row::Spec26);
    img_.marks.ibStallSpec26 = emit(uop(Dp::Nop));
    row(Row::BDisp);
    img_.marks.ibStallBdisp = emit(uop(Dp::Nop));

    row(Row::Abort);
    img_.marks.abort = emit(uop(Dp::Nop));

    row(Row::ExSystem);
    img_.marks.halted =
        emit(uop(Dp::Halt, Mem::None, Ib::None, Seq::Jump, 0));
    uasm_.patchTarget(img_.marks.halted, img_.marks.halted);
}

UAddr
Builder::emitSpecRoutine(bool first, SpecMode m, AccessBucket b)
{
    const SpecClass cls = [&] {
        switch (m) {
          case SpecMode::Lit:
            return SpecClass::ShortLiteral;
          case SpecMode::Reg:
            return SpecClass::Register;
          case SpecMode::RegDef:
            return SpecClass::RegDeferred;
          case SpecMode::AutoInc:
            return SpecClass::AutoIncrement;
          case SpecMode::AutoIncDef:
            return SpecClass::AutoIncDeferred;
          case SpecMode::AutoDec:
            return SpecClass::AutoDecrement;
          case SpecMode::Disp:
            return SpecClass::Displacement;
          case SpecMode::DispDef:
            return SpecClass::DispDeferred;
          case SpecMode::Abs:
            return SpecClass::Absolute;
          case SpecMode::Imm:
            return SpecClass::Immediate;
          default:
            panic("bad spec mode");
        }
    }();

    UAddr entry = 0;
    switch (m) {
      case SpecMode::Lit:
        entry = emit(uop(Dp::OperandFromLit, Mem::None, Ib::DecodeSpec,
                         Seq::SpecDispatch));
        break;
      case SpecMode::Imm:
        entry = emit(uop(Dp::OperandFromImm, Mem::None, Ib::DecodeSpec,
                         Seq::SpecDispatch));
        break;
      case SpecMode::Reg:
        if (b == AccessBucket::Write) {
            entry = emit(uop(Dp::RegWriteSpec, Mem::None, Ib::DecodeSpec,
                             Seq::SpecDispatch));
        } else {
            // Read, Modify and register-field all latch the register.
            entry = emit(uop(Dp::OperandFromReg, Mem::None,
                             Ib::DecodeSpec, Seq::SpecDispatch));
        }
        break;
      default: {
        // Memory modes: address-calculation head, then access tail.
        Dp head = Dp::Nop;
        bool deferred = false;
        uint16_t autoinc_size = 0;
        switch (m) {
          case SpecMode::RegDef:
            head = Dp::SpecLoadReg;
            break;
          case SpecMode::AutoInc:
            head = Dp::SpecAutoInc;
            break;
          case SpecMode::AutoDec:
            head = Dp::SpecAutoDec;
            break;
          case SpecMode::Disp:
            head = Dp::SpecLoadRegDisp;
            break;
          case SpecMode::Abs:
            head = Dp::SpecLoadAbs;
            break;
          case SpecMode::AutoIncDef:
            head = Dp::SpecAutoInc;
            deferred = true;
            autoinc_size = 4;  // pointer-sized increment
            break;
          case SpecMode::DispDef:
            head = Dp::SpecLoadRegDisp;
            deferred = true;
            break;
          default:
            panic("bad memory spec mode");
        }

        entry = emit(uop(head, Mem::None, Ib::DecodeSpec, Seq::Next, 0,
                         autoinc_size));
        if (deferred) {
            emit(uop(Dp::Nop, Mem::ReadV, Ib::None, Seq::Next, 0, 4));
            emit(uop(Dp::MdrToTaddr));
        }
        switch (b) {
          case AccessBucket::Read:
          case AccessBucket::Modify:
            emit(uop(Dp::OperandFromMdr, Mem::ReadV, Ib::None,
                     Seq::SpecDispatch));
            break;
          case AccessBucket::Write:
            emit(uop(Dp::WriteResult, Mem::WriteV, Ib::None,
                     Seq::SpecDispatch));
            break;
          case AccessBucket::Addr:
            emit(uop(Dp::OperandAddr, Mem::None, Ib::None,
                     Seq::SpecDispatch));
            break;
          default:
            panic("bad access bucket");
        }
        break;
      }
    }

    noteSpec(entry, first, cls, false);
    return entry;
}

void
Builder::buildSpecRegion(bool first)
{
    row(first ? Row::Spec1 : Row::Spec26);
    const int f = first ? 1 : 0;

    auto valid = [](SpecMode m, AccessBucket b) {
        if (m == SpecMode::Lit || m == SpecMode::Imm)
            return b == AccessBucket::Read;
        if (m == SpecMode::Reg)
            return b != AccessBucket::Addr;
        return true;
    };

    for (size_t mi = 0; mi < size_t(SpecMode::NumModes); ++mi) {
        for (size_t bi = 0; bi < size_t(AccessBucket::NumBuckets); ++bi) {
            SpecMode m = static_cast<SpecMode>(mi);
            AccessBucket b = static_cast<AccessBucket>(bi);
            if (valid(m, b))
                img_.specRoutine[f][mi][bi] = emitSpecRoutine(first, m, b);
        }
    }

    // Field access (.v) with register mode: the field lives in the
    // register itself; one cycle to latch the register number.
    img_.regFieldRoutine[f] = emit(uop(Dp::OperandFromReg, Mem::None,
                                       Ib::DecodeSpec, Seq::SpecDispatch));
    noteSpec(img_.regFieldRoutine[f], first, SpecClass::Register, false);

    // Quad/double immediate: the 8-byte literal cannot fit the IB in
    // one piece; two pulls.
    img_.immQuadRoutine[f] = emit(uop(Dp::OperandFromImm, Mem::None,
                                      Ib::DecodeSpec, Seq::Next));
    emit(uop(Dp::OperandImmHigh, Mem::None, Ib::GetImmHigh,
             Seq::SpecDispatch));
    noteSpec(img_.immQuadRoutine[f], first, SpecClass::Immediate, false);

    // Post-index access tails live in their own region so that only
    // the base-address calculation is misattributed (see buildIndexed).
    img_.idxTail[f][size_t(AccessBucket::Read)] =
        emit(uop(Dp::OperandFromMdr, Mem::ReadV, Ib::None,
                 Seq::SpecDispatch));
    img_.idxTail[f][size_t(AccessBucket::Modify)] =
        emit(uop(Dp::OperandFromMdr, Mem::ReadV, Ib::None,
                 Seq::SpecDispatch));
    img_.idxTail[f][size_t(AccessBucket::Write)] =
        emit(uop(Dp::WriteResult, Mem::WriteV, Ib::None,
                 Seq::SpecDispatch));
    img_.idxTail[f][size_t(AccessBucket::Addr)] =
        emit(uop(Dp::OperandAddr, Mem::None, Ib::None,
                 Seq::SpecDispatch));
}

void
Builder::buildIndexed()
{
    // All indexed base-address calculation is microcode shared in the
    // SPEC2-6 region (the paper's §5 reporting note).
    row(Row::Spec26);

    for (int f = 0; f < 2; ++f) {
        // Common continuations.
        UAddr common = 0, common_def = 0;
        common = emit(uop(Dp::SpecIndexAdd, Mem::None, Ib::None,
                          Seq::SpecDispatch));
        common_def = emit(uop(Dp::Nop, Mem::ReadV, Ib::None, Seq::Next,
                              0, 4));
        emit(uop(Dp::MdrToTaddr));
        emit(uop(Dp::SpecIndexAdd, Mem::None, Ib::None,
                 Seq::SpecDispatch));

        struct BaseMode
        {
            SpecMode mode;
            SpecClass cls;
            bool deferred;
        };
        static const BaseMode bases[] = {
            {SpecMode::RegDef, SpecClass::RegDeferred, false},
            {SpecMode::AutoInc, SpecClass::AutoIncrement, false},
            {SpecMode::AutoIncDef, SpecClass::AutoIncDeferred, true},
            {SpecMode::AutoDec, SpecClass::AutoDecrement, false},
            {SpecMode::Disp, SpecClass::Displacement, false},
            {SpecMode::DispDef, SpecClass::DispDeferred, true},
            {SpecMode::Abs, SpecClass::Absolute, false},
        };
        for (const BaseMode &bm : bases) {
            UAddr entry = emit(uop(Dp::SpecIndexBase, Mem::None,
                                   Ib::DecodeSpec, Seq::Jump,
                                   bm.deferred ? common_def : common));
            img_.idxRoutine[f][size_t(bm.mode)] = entry;
            noteSpec(entry, f == 1, bm.cls, true);
        }
    }
}

void
Builder::buildTbMiss(bool istream, UAddr &entry_out)
{
    row(Row::MemMgmt);

    // Primary path: derive the PTE address (protection and length
    // checks modeled as pad cycles), fetch the PTE through the cache,
    // and load the TB. Process-space misses whose PTE page is not
    // itself covered by a system TB entry take the nested path first.
    UAddr entry = emit(uop(Dp::TbComputePte, Mem::None, Ib::None,
                           Seq::Next, 0, 0));
    entry_out = entry;
    pad(6);
    UAddr branch_nested = uasm_.reserve();
    UAddr cont = emit(uop(Dp::Nop, Mem::ReadP, Ib::None, Seq::Next, 0, 4));
    emit(uop(Dp::TbFill, Mem::None, Ib::None, Seq::Next, 0, 0));
    pad(8);
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::TrapReturn));

    // Nested system fill for the page holding the process PTE.
    UAddr nested = emit(uop(Dp::TbComputePte, Mem::None, Ib::None,
                            Seq::Next, 0, 1));
    emit(uop(Dp::Nop, Mem::ReadP, Ib::None, Seq::Next, 0, 4));
    emit(uop(Dp::TbFill, Mem::None, Ib::None, Seq::Next, 0, 1));
    emit(uop(Dp::TbComputePte, Mem::None, Ib::None, Seq::Jump, cont, 2));

    uasm_.patch(branch_nested,
                uop(Dp::Nop, Mem::None, Ib::None, Seq::JumpIfFlag,
                    nested));
    (void)istream;  // the two copies differ only in attribution
}

void
Builder::buildIntDispatch()
{
    row(Row::IntExcept);
    // The SCB entry is fetched first: its low bit selects the kernel
    // or the interrupt stack for the PC/PSL pushes.
    img_.marks.intDispatch =
        emit(uop(Dp::IntVector, Mem::ReadP, Ib::None, Seq::Next, 0, 4));
    emit(uop(Dp::IntPushPsl, Mem::WriteV, Ib::None, Seq::Next, 0, 4));
    pad(4);
    emit(uop(Dp::IntPushPc, Mem::WriteV, Ib::None, Seq::Next, 0, 4));
    // Priority arbitration, mode bookkeeping and vector validation
    // take most of the dispatch flow's time on the real machine.
    pad(16);
    emit(uop(Dp::IntEnter, Mem::None, Ib::None, Seq::DecodeNext));
}

void
Builder::buildMcheckDispatch()
{
    row(Row::IntExcept);
    // Machine-check dispatch mirrors the interrupt flow but pushes a
    // three-longword frame (code below PC below PSL) and spends extra
    // cycles reading out the error-latching registers, as the 780's
    // console error flows did. The SCB machine-check entry always
    // selects the interrupt stack.
    img_.marks.machineCheck =
        emit(uop(Dp::IntVector, Mem::ReadP, Ib::None, Seq::Next, 0, 4));
    emit(uop(Dp::IntPushPsl, Mem::WriteV, Ib::None, Seq::Next, 0, 4));
    pad(4);
    emit(uop(Dp::IntPushPc, Mem::WriteV, Ib::None, Seq::Next, 0, 4));
    emit(uop(Dp::McheckPushCode, Mem::WriteV, Ib::None, Seq::Next, 0, 4));
    // Error-register readout and summary-code assembly.
    pad(20);
    emit(uop(Dp::IntEnter, Mem::None, Ib::None, Seq::DecodeNext));
}

void
Builder::beginExec(std::initializer_list<Op> ops, bool branch_format)
{
    if (ops.size() == 0)
        panic("beginExec with no opcodes");
    Group g = arch::opcodeInfo(*ops.begin()).group;
    for (Op o : ops) {
        if (arch::opcodeInfo(o).group != g)
            panic("execute routine shared across groups");
    }
    row(execRowFor(g));
    pendingOps_.assign(ops.begin(), ops.end());
    pendingBranchFormat_ = branch_format;
}

void
Builder::setEntries(UAddr entry)
{
    const OpcodeInfo &info0 = arch::opcodeInfo(*pendingOps_.begin());
    img_.execEntries[entry] = ExecEntryNote{
        info0.group, info0.pcClass, pendingBranchFormat_};
    for (Op o : pendingOps_) {
        uint8_t b = static_cast<uint8_t>(o);
        if (img_.execEntry[b] != 0)
            panic("duplicate execute entry for opcode 0x%02x", b);
        img_.execEntry[b] = entry;
    }
}

void
Builder::setAltEntries(UAddr entry)
{
    const OpcodeInfo &info0 = arch::opcodeInfo(*pendingOps_.begin());
    img_.execEntries[entry] = ExecEntryNote{
        info0.group, info0.pcClass, pendingBranchFormat_};
    for (Op o : pendingOps_) {
        uint8_t b = static_cast<uint8_t>(o);
        if (img_.execEntryRegAlt[b] != 0)
            panic("duplicate alternate entry for opcode 0x%02x", b);
        img_.execEntryRegAlt[b] = entry;
    }
}

void
Builder::exPlain(std::initializer_list<Op> ops, uint32_t pads,
                 bool has_modify)
{
    beginExec(ops, false);
    UAddr entry;
    if (pads == 0 && !has_modify) {
        entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                         Seq::SpecDispatch));
    } else {
        entry = emit(uop(Dp::Exec));
        if (pads > 1)
            pad(pads - 1);
        if (has_modify) {
            emit(uop(Dp::ModifyWriteback, Mem::WriteV, Ib::None,
                     Seq::SpecDispatch));
        } else {
            emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::SpecDispatch));
        }
    }
    setEntries(entry);

    // Register-destination fast path: the result is stored by the
    // execute cycle itself, with no write-back microword.
    if (has_modify) {
        UAddr alt;
        if (pads == 0) {
            alt = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::SpecDispatch));
        } else {
            alt = emit(uop(Dp::Exec));
            if (pads > 1)
                pad(pads - 1);
            emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::SpecDispatch));
        }
        setAltEntries(alt);
    }
}

void
Builder::exCondBranch(std::initializer_list<Op> ops, PcClass cls)
{
    beginExec(ops, true);
    Row ex_row = uasm_.currentRow();
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                           Seq::DecodeNextIfNotFlag));
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = cls;
    setEntries(entry);
}

void
Builder::exLoopBranch(std::initializer_list<Op> ops, PcClass cls,
                      uint32_t pads)
{
    beginExec(ops, true);
    Row ex_row = uasm_.currentRow();
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                           Seq::Next));
    if (pads)
        pad(pads);
    emit(uop(Dp::ModifyWriteback, Mem::WriteV, Ib::None,
             Seq::DecodeNextIfNotFlag));
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = cls;
    setEntries(entry);

    // Register-index fast path.
    UAddr alt = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                         pads ? Seq::Next : Seq::DecodeNextIfNotFlag));
    if (pads) {
        pad(pads - 1);
        emit(uop(Dp::Nop, Mem::None, Ib::None,
                 Seq::DecodeNextIfNotFlag));
    }
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take2 = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                           Seq::DecodeNext));
    img_.takenEntries[take2] = cls;
    setAltEntries(alt);
}

void
Builder::exBsb(std::initializer_list<Op> ops)
{
    beginExec(ops, true);
    Row ex_row = uasm_.currentRow();
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                           Seq::Next));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushPc));
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Subroutine;
    setEntries(entry);
}

void
Builder::exJsb()
{
    beginExec({Op::JSB}, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushPc));
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Subroutine;
    setEntries(entry);
}

void
Builder::exRsb()
{
    beginExec({Op::RSB}, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::PopPc));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::SetTarget));
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Subroutine;
    setEntries(entry);
}

void
Builder::exJmp()
{
    beginExec({Op::JMP}, false);
    UAddr entry = emit(uop(Dp::Exec));
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Uncond;
    setEntries(entry);
}

void
Builder::exBitBranch()
{
    beginExec({Op::BBS, Op::BBC, Op::BBSS, Op::BBCS, Op::BBSC,
               Op::BBCC, Op::BBSSI, Op::BBCCI}, true);
    Row ex_row = uasm_.currentRow();
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                           Seq::Next));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::BbRead));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None,
             Seq::DecodeNextIfNotFlag, 0, phase::BbWrite));
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::BitBranch;
    setEntries(entry);

    // Register-base bit branch: test (and set/clear) in the datapath.
    UAddr alt = emit(uop(Dp::Exec, Mem::None, Ib::GetBranchDisp,
                         Seq::Next));
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::DecodeNextIfNotFlag));
    row(Row::BDisp);
    emit(uop(Dp::BranchTarget));
    row(ex_row);
    UAddr take2 = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                           Seq::DecodeNext));
    img_.takenEntries[take2] = PcClass::BitBranch;
    setAltEntries(alt);
}

void
Builder::exCase(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::CaseRead));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::CaseTarget));
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Case;
    UAddr oor = emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
                         phase::CaseFall));
    UAddr take2 = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                           Seq::DecodeNext));
    img_.takenEntries[take2] = PcClass::Case;
    uasm_.patchTarget(entry_word, oor);
    setEntries(entry);
}

void
Builder::exPush(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::SpecDispatch, 0,
             phase::PushReg));
    setEntries(entry);
}

// (Stack-pointer updates are architectural effects applied by the
// Exec setup step; the push/pop loops below are the timed references.)

void
Builder::exMovc(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    // Setup: length decomposition, direction checks, register loads.
    pad(6);
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::StrRead));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::StrWrite));
    // Padding so successive writes land six cycles apart: the real
    // microcode was written to avoid write stalls in string moves
    // (paper §4.3).
    pad(7);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::DecodeNext, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exCmpStr(std::initializer_list<Op> ops, bool two_streams)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::StrRead));
    if (two_streams) {
        emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
                 phase::StrRead2));
    }
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::StrCheck));
    pad(5);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::DecodeNext, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exDecimal(std::initializer_list<Op> ops, uint32_t setup_pads,
                   uint32_t loop_pads, bool writes)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    if (setup_pads)
        pad(setup_pads);
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::StrRead));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::StrRead2));
    if (loop_pads)
        pad(loop_pads);
    if (writes) {
        emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
                 phase::StrWrite));
    }
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::SpecDispatch, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exPushr()
{
    beginExec({Op::PUSHR}, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    UAddr loop = emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next,
                          0, phase::PushReg));
    pad(1);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::DecodeNext));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exPopr()
{
    beginExec({Op::POPR}, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::PopReg));
    pad(1);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::DecodeNext));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exCall(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    bool is_calls = *ops.begin() == Op::CALLS;
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::ReadMask));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::SetupFrame));
    // Stack-alignment bookkeeping, PSW assembly, mask formatting.
    pad(6);
    if (is_calls) {
        // CALLS pushes the argument count; CALLG has no such word.
        emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
                 phase::PushNumarg));
    }
    // Saved-register push loop (flag was set by SetupFrame).
    UAddr check = emit(uop(Dp::Nop, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr loop = emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next,
                          0, phase::PushReg));
    pad(1);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    // Frame proper: PC, FP, AP, mask/PSW, condition handler.
    UAddr frame = emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None,
                           Seq::Next, 0, phase::PushPc));
    uasm_.patchTarget(check, frame);
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushFp));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushAp));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushMask));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushHandler));
    pad(7);
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::FinishCall));
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Procedure;
    setEntries(entry);
}

void
Builder::exRet()
{
    beginExec({Op::RET}, false);
    UAddr entry = emit(uop(Dp::Exec));
    // Read the five frame longwords (handler, mask/PSW, AP, FP, PC).
    for (int i = 0; i < 5; ++i) {
        emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
                 phase::ReadFrame));
    }
    // Restore the saved registers.
    UAddr check = emit(uop(Dp::Nop, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::PopReg));
    pad(1);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr fin = emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
                         phase::FinishRet));
    uasm_.patchTarget(check, fin);
    pad(6);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::Procedure;
    setEntries(entry);
}

void
Builder::exChmx(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushPsl));
    pad(4);
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushPc));
    pad(4);
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::PushCode));
    emit(uop(Dp::ExecStep, Mem::ReadP, Ib::None, Seq::Next, 0,
             phase::ReadVector));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::EnterKernel));
    pad(10);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::SystemBr;
    setEntries(entry);
}

void
Builder::exRei()
{
    beginExec({Op::REI}, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::PopPc));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::PopPsl));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::RestorePsl));
    pad(8);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    img_.takenEntries[take] = PcClass::SystemBr;
    setEntries(entry);
}

void
Builder::exSvpctx()
{
    beginExec({Op::SVPCTX}, false);
    UAddr entry = emit(uop(Dp::Exec));
    pad(2);
    UAddr loop = emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next,
                          0, phase::SaveReg));
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::FinishSave));
    pad(2);
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::DecodeNext));
    setEntries(entry);
}

void
Builder::exLdpctx()
{
    beginExec({Op::LDPCTX}, false);
    UAddr entry = emit(uop(Dp::Exec));
    pad(2);
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::LoadReg));
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::FinishLoad));
    pad(3);
    UAddr take = emit(uop(Dp::TakeBranch, Mem::None, Ib::None,
                          Seq::DecodeNext));
    (void)take;  // LDPCTX redirect is not a Table 2 branch class
    setEntries(entry);
}

void
Builder::exQueue(std::initializer_list<Op> ops, uint32_t writes)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::QueRead));
    pad(7);
    for (uint32_t i = 0; i < writes; ++i) {
        emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
                 phase::QueWrite));
        if (i + 1 < writes)
            pad(3);
    }
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::SpecDispatch, 0,
             phase::QueFinish));
    setEntries(entry);
}

void
Builder::exField(std::initializer_list<Op> ops, bool insert)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::FieldRead));
    emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next, 0,
             phase::FieldRead2));
    pad(cost_.Field - 1);
    if (insert) {
        emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
                 phase::FieldWrite));
        emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
                 phase::FieldWrite2));
    }
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::SpecDispatch));
    setEntries(entry);

    // Register-base field: no memory references at all.
    UAddr alt = emit(uop(Dp::Exec));
    pad(cost_.Field - 2);
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::SpecDispatch));
    setAltEntries(alt);
}

void
Builder::exPoly(std::initializer_list<Op> ops)
{
    beginExec(ops, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::PolyRead));
    emit(uop(Dp::ExecStep, Mem::None, Ib::None, Seq::Next, 0,
             phase::PolyStep));
    pad(4);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::DecodeNext, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exCrc()
{
    beginExec({Op::CRC}, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::StrRead));
    pad(3);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::DecodeNext, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exEditpc()
{
    beginExec({Op::EDITPC}, false);
    UAddr entry = emit(uop(Dp::Exec, Mem::None, Ib::None,
                           Seq::JumpIfNotFlag));
    UAddr entry_word = entry;
    pad(6);
    UAddr loop = emit(uop(Dp::ExecStep, Mem::ReadV, Ib::None, Seq::Next,
                          0, phase::StrRead));
    pad(2);
    emit(uop(Dp::ExecStep, Mem::WriteV, Ib::None, Seq::Next, 0,
             phase::StrWrite));
    pad(2);
    emit(uop(Dp::LoopDec, Mem::None, Ib::None, Seq::JumpIfFlag, loop));
    UAddr done = emit(uop(Dp::ExecStep, Mem::None, Ib::None,
                          Seq::DecodeNext, 0, phase::StrFinish));
    uasm_.patchTarget(entry_word, done);
    setEntries(entry);
}

void
Builder::exHalt()
{
    beginExec({Op::HALT}, false);
    UAddr entry = emit(uop(Dp::Halt, Mem::None, Ib::None, Seq::Jump,
                           img_.marks.halted));
    setEntries(entry);
}

void
Builder::exXfc()
{
    beginExec({Op::XFC}, false);
    UAddr entry = emit(uop(Dp::OsAssist));
    pad(2);
    emit(uop(Dp::Nop, Mem::None, Ib::None, Seq::DecodeNext));
    setEntries(entry);
}

void
Builder::buildExec()
{
    // ----- SIMPLE group ---------------------------------------------------
    exPlain({Op::MOVB, Op::MOVW, Op::MOVL, Op::MOVQ}, 0, false);
    exPlain({Op::MCOMB, Op::MCOMW, Op::MCOML, Op::MNEGB, Op::MNEGW,
             Op::MNEGL}, 0, false);
    exPlain({Op::CVTBL, Op::CVTBW, Op::CVTWL, Op::CVTWB, Op::CVTLB,
             Op::CVTLW, Op::MOVZBL, Op::MOVZBW, Op::MOVZWL}, 0, false);
    exPlain({Op::MOVAB, Op::MOVAW, Op::MOVAL, Op::MOVAQ}, 0, false);
    exPush({Op::PUSHL, Op::PUSHAB, Op::PUSHAW, Op::PUSHAL, Op::PUSHAQ});
    exPlain({Op::ADDB2, Op::ADDW2, Op::ADDL2, Op::SUBB2, Op::SUBW2,
             Op::SUBL2, Op::BISB2, Op::BISW2, Op::BISL2, Op::BICB2,
             Op::BICW2, Op::BICL2, Op::XORB2, Op::XORW2, Op::XORL2,
             Op::INCB, Op::INCW, Op::INCL, Op::DECB, Op::DECW, Op::DECL,
             Op::ADWC, Op::SBWC}, 0, true);
    exPlain({Op::ADDB3, Op::ADDW3, Op::ADDL3, Op::SUBB3, Op::SUBW3,
             Op::SUBL3, Op::BISB3, Op::BISW3, Op::BISL3, Op::BICB3,
             Op::BICW3, Op::BICL3, Op::XORB3, Op::XORW3, Op::XORL3},
            0, false);
    exPlain({Op::CMPB, Op::CMPW, Op::CMPL, Op::BITB, Op::BITW, Op::BITL},
            0, false);
    exPlain({Op::TSTB, Op::TSTW, Op::TSTL}, 0, false);
    exPlain({Op::CLRB, Op::CLRW, Op::CLRL, Op::CLRQ}, 0, false);
    exPlain({Op::ASHL, Op::ROTL}, cost_.AshL, false);
    exPlain({Op::ASHQ}, cost_.AshQ, false);
    exPlain({Op::INDEX}, cost_.Index, false);
    exPlain({Op::ADAWI}, cost_.Adawi, true);
    exPlain({Op::NOP}, 1, false);
    exPlain({Op::BISPSW, Op::BICPSW}, 1, false);
    exPlain({Op::MOVPSL}, 1, false);
    exCondBranch({Op::BNEQ, Op::BEQL, Op::BGTR, Op::BLEQ, Op::BGEQ,
                  Op::BLSS, Op::BGTRU, Op::BLEQU, Op::BVC, Op::BVS,
                  Op::BCC, Op::BCS, Op::BRB, Op::BRW},
                 PcClass::SimpleCond);
    exCondBranch({Op::BLBS, Op::BLBC}, PcClass::LowBit);
    exLoopBranch({Op::AOBLSS, Op::AOBLEQ}, PcClass::Loop, 0);
    exLoopBranch({Op::SOBGEQ, Op::SOBGTR}, PcClass::Loop, 0);
    exLoopBranch({Op::ACBB, Op::ACBW, Op::ACBL}, PcClass::Loop, 1);
    exBsb({Op::BSBB, Op::BSBW});
    exJsb();
    exRsb();
    exJmp();
    exCase({Op::CASEB, Op::CASEW, Op::CASEL});

    // ----- FLOAT group (includes integer multiply/divide) ------------------
    exPlain({Op::MULB2, Op::MULW2, Op::MULL2}, cost_.MulInt, true);
    exPlain({Op::MULB3, Op::MULW3, Op::MULL3}, cost_.MulInt, false);
    exPlain({Op::DIVB2, Op::DIVW2, Op::DIVL2}, cost_.DivInt, true);
    exPlain({Op::DIVB3, Op::DIVW3, Op::DIVL3}, cost_.DivInt, false);
    exPlain({Op::EMUL}, cost_.Emul, false);
    exPlain({Op::EDIV}, cost_.Ediv, false);
    exPlain({Op::ADDF2, Op::SUBF2}, cost_.AddF, true);
    exPlain({Op::ADDF3, Op::SUBF3}, cost_.AddF, false);
    exPlain({Op::MULF2}, cost_.MulF, true);
    exPlain({Op::MULF3}, cost_.MulF, false);
    exPlain({Op::DIVF2}, cost_.DivF, true);
    exPlain({Op::DIVF3}, cost_.DivF, false);
    exPlain({Op::CVTFB, Op::CVTFW, Op::CVTFL, Op::CVTRFL, Op::CVTBF,
             Op::CVTWF, Op::CVTLF, Op::CVTFD}, cost_.CvtF, false);
    exPlain({Op::MOVF, Op::MNEGF, Op::TSTF, Op::CMPF}, cost_.MovF,
            false);
    exPlain({Op::EMODF}, cost_.EmodF, false);
    exPoly({Op::POLYF});
    exPlain({Op::ADDD2, Op::SUBD2}, cost_.AddF + cost_.DFloatExtra,
            true);
    exPlain({Op::ADDD3, Op::SUBD3}, cost_.AddF + cost_.DFloatExtra,
            false);
    exPlain({Op::MULD2}, cost_.MulF + cost_.DFloatExtra, true);
    exPlain({Op::MULD3}, cost_.MulF + cost_.DFloatExtra, false);
    exPlain({Op::DIVD2}, cost_.DivF + cost_.DFloatExtra, true);
    exPlain({Op::DIVD3}, cost_.DivF + cost_.DFloatExtra, false);
    exPlain({Op::CVTDB, Op::CVTDW, Op::CVTDL, Op::CVTRDL, Op::CVTBD,
             Op::CVTWD, Op::CVTLD, Op::CVTDF},
            cost_.CvtF + cost_.DFloatExtra, false);
    exPlain({Op::MOVD, Op::MNEGD, Op::TSTD, Op::CMPD},
            cost_.MovF + cost_.DFloatExtra, false);
    exPlain({Op::EMODD}, cost_.EmodF + cost_.DFloatExtra, false);
    exPoly({Op::POLYD});
    exLoopBranch({Op::ACBF, Op::ACBD}, PcClass::Loop,
                 cost_.AddF);

    // ----- FIELD group ------------------------------------------------------
    exField({Op::EXTV, Op::EXTZV, Op::FFS, Op::FFC, Op::CMPV, Op::CMPZV},
            false);
    exField({Op::INSV}, true);
    exBitBranch();

    // ----- CALL/RET group ---------------------------------------------------
    exCall({Op::CALLS});
    exCall({Op::CALLG});
    exRet();
    exPushr();
    exPopr();

    // ----- SYSTEM group -----------------------------------------------------
    exChmx({Op::CHMK, Op::CHME, Op::CHMS, Op::CHMU});
    exRei();
    exSvpctx();
    exLdpctx();
    exQueue({Op::INSQUE}, 3);
    exQueue({Op::REMQUE}, 2);

    exPlain({Op::PROBER, Op::PROBEW}, cost_.Probe, false);
    exPlain({Op::MTPR}, cost_.Mxpr, false);
    exPlain({Op::MFPR}, cost_.Mxpr, false);
    exPlain({Op::BPT}, 2, false);
    exHalt();
    exXfc();

    // ----- CHARACTER group --------------------------------------------------
    exMovc({Op::MOVC3});
    exMovc({Op::MOVC5});
    exCmpStr({Op::CMPC3, Op::CMPC5}, true);
    exCmpStr({Op::LOCC, Op::SKPC}, false);
    exCmpStr({Op::SCANC, Op::SPANC}, false);
    exCmpStr({Op::MATCHC}, false);
    exMovc({Op::MOVTC, Op::MOVTUC});
    exCrc();

    // ----- DECIMAL group ----------------------------------------------------
    // Decimal arithmetic is digit-serial on the real machine: the
    // loop body spends most of its time in nibble extraction, BCD
    // correction and sign handling between the stream references.
    exDecimal({Op::ADDP4, Op::SUBP4}, 30, 28, true);
    exDecimal({Op::ADDP6, Op::SUBP6}, 36, 30, true);
    exDecimal({Op::MULP, Op::DIVP}, 70, 44, true);
    exDecimal({Op::MOVP}, 14, 12, true);
    exDecimal({Op::CMPP3, Op::CMPP4}, 16, 14, false);
    exDecimal({Op::CVTLP, Op::CVTPL}, 22, 18, true);
    exDecimal({Op::CVTPT, Op::CVTTP, Op::CVTPS, Op::CVTSP}, 30, 20,
              true);
    exDecimal({Op::ASHP}, 30, 20, true);
    exEditpc();
}

} // namespace

const MicrocodeImage &
microcodeImage()
{
    static const Builder builder;
    return builder.img_;
}

const MicrocodeImage &
microcodeImageNoFpa()
{
    static const Builder builder{ExecCost::noFpa()};
    return builder.img_;
}

} // namespace upc780::ucode
