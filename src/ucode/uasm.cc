#include "ucode/uasm.hh"

#include "common/logging.hh"

namespace upc780::ucode
{

MicroAssembler::MicroAssembler(MicrocodeImage &image)
    : img_(image), next_(1)  // address 0 is reserved as "invalid"
{
}

UAddr
MicroAssembler::here() const
{
    return static_cast<UAddr>(next_);
}

UAddr
MicroAssembler::emit(const MicroOp &op)
{
    if (next_ >= ControlStoreSize)
        panic("control store overflow (%u words)", next_);
    UAddr a = static_cast<UAddr>(next_++);
    img_.ops[a] = op;
    img_.info[a].row = row_;
    img_.allocated = next_;
    return a;
}

void
MicroAssembler::pad(uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i)
        emit(uop(Dp::Nop));
}

UAddr
MicroAssembler::reserve()
{
    return emit(uop(Dp::Nop));
}

void
MicroAssembler::patch(UAddr a, const MicroOp &op)
{
    if (a == 0 || a >= next_)
        panic("patch of unallocated micro-address %u", a);
    img_.ops[a] = op;
}

void
MicroAssembler::patchTarget(UAddr a, UAddr target)
{
    if (a == 0 || a >= next_)
        panic("patchTarget of unallocated micro-address %u", a);
    img_.ops[a].target = target;
}

} // namespace upc780::ucode
