/**
 * @file
 * The microinstruction word of the modeled VAX-11/780 EBOX.
 *
 * The real 780 control word is 99 bits of horizontal microcode; this
 * model uses a symbolic microinstruction with the same *structural*
 * fields — a datapath function, a memory function, an instruction-
 * buffer (I-Decode) function, and next-address sequencing — executed
 * at one microinstruction per 200 ns cycle. Semantically heavy
 * datapath steps (e.g. "perform this opcode's arithmetic") are single
 * micro-operations whose surrounding routine supplies the 780's
 * documented cycle counts; DESIGN.md discusses this substitution.
 *
 * Instruction flow through the microcode:
 *
 *   uDECODE --(dispatch)--> SPEC routines for read/modify/address
 *   operands --> per-opcode EXECUTE routine (which consumes any
 *   branch displacement and may loop) --> SPEC routines for write
 *   operands --> uDECODE of the next instruction.
 *
 * TB misses microtrap through a one-cycle ABORT microinstruction into
 * the memory-management service routine and then retry the trapped
 * microinstruction, exactly as the paper describes (§4.2, §5).
 */

#ifndef UPC780_UCODE_UOP_HH
#define UPC780_UCODE_UOP_HH

#include <cstdint>

namespace upc780::ucode
{

/** Address within the control store. */
using UAddr = uint16_t;

/** Control store capacity: matches the UPC board's 16 K buckets. */
constexpr uint32_t ControlStoreSize = 16384;

/** Datapath function of a micro-op. */
enum class Dp : uint8_t
{
    Nop,

    // --- operand-specifier datapath steps -----------------------------
    SpecLoadReg,     //!< TADDR = GPR[specReg]
    SpecLoadRegDisp, //!< TADDR = GPR[specReg] + specDisp
    SpecLoadAbs,     //!< TADDR = absolute address from I-stream
    SpecAutoInc,     //!< TADDR = GPR[specReg]; GPR[specReg] += size
    SpecAutoDec,     //!< GPR[specReg] -= size; TADDR = GPR[specReg]
    SpecIndexBase,   //!< TADDR = base address of indexed specifier
    SpecIndexAdd,    //!< TADDR += GPR[specIndexReg] * operand size
    MdrToTaddr,      //!< TADDR = MDR (deferred modes)
    OperandFromReg,  //!< operand[cur] = GPR[specReg] (+pair for quad)
    OperandFromLit,  //!< operand[cur] = expanded short literal
    OperandFromImm,  //!< operand[cur] = I-stream immediate (low half)
    OperandImmHigh,  //!< merge high longword of a quad immediate
    OperandFromMdr,  //!< operand[cur] = MDR; remember TADDR
    OperandAddr,     //!< operand[cur] address = TADDR (access .a/.v)
    RegWriteSpec,    //!< GPR[specReg] = next pending result (write spec)
    WriteResult,     //!< MDR = next pending result (mem write spec)

    // --- execute-phase steps ------------------------------------------
    Exec,            //!< perform the opcode's operation (sets flags)
    ExecStep,        //!< one step of an iterative execute; arg = phase
    LoopDec,         //!< decrement loop counter; flag = (counter != 0)
    ModifyWriteback, //!< TADDR = saved modify address; MDR = result
    BranchTarget,    //!< TADDR = PC + branchDisp (B-DISP activity)
    TakeBranch,      //!< PC = TADDR; flush and redirect the IB

    // --- memory management (TB miss service) ---------------------------
    TbComputePte,    //!< TADDR = address of PTE for the missed VA
    TbFill,          //!< insert MDR's PFN into the TB for the missed VA

    // --- interrupt/exception dispatch (hardware-initiated) -------------
    IntPushPc,       //!< SP -= 4; TADDR = SP; MDR = PC
    IntPushPsl,      //!< SP -= 4; TADDR = SP; MDR = PSL
    IntVector,       //!< TADDR = SCBB + 4 * pending vector (physical)
    IntEnter,        //!< PC = MDR; raise IPL; redirect IB
    McheckPushCode,  //!< SP -= 4; TADDR = SP; MDR = machine-check code

    // --- model hooks ----------------------------------------------------
    OsAssist,        //!< XFC escape to the VMS-lite assist hook
    Halt,            //!< stop the machine
};

/** Memory function of a micro-op (at most one reference per cycle). */
enum class Mem : uint8_t
{
    None,
    ReadV,   //!< D-stream read at virtual TADDR -> MDR
    WriteV,  //!< D-stream write of MDR at virtual TADDR
    ReadP,   //!< read at physical TADDR -> MDR (PTE and SCB fetches)
};

/** I-Decode / instruction-buffer function of a micro-op. */
enum class Ib : uint8_t
{
    None,
    DecodeOp,      //!< consume the opcode byte
    DecodeSpec,    //!< consume the current specifier's encoding
    GetImmHigh,    //!< consume the high longword of a quad immediate
    GetBranchDisp, //!< consume the 1- or 2-byte branch displacement
};

/** Sequencing control. */
enum class Seq : uint8_t
{
    Next,                //!< fall through to uPC + 1
    Jump,                //!< go to target
    Call,                //!< push uPC + 1, go to target
    Return,              //!< pop micro return stack
    JumpIfFlag,          //!< go to target if EBOX condition flag set
    JumpIfNotFlag,       //!< go to target if flag clear
    SpecDispatch,        //!< dispatch to next specifier routine / phase
    DecodeNext,          //!< instruction complete
    DecodeNextIfNotFlag, //!< flag clear: done; flag set: fall through
    TrapReturn,          //!< end of microtrap service: retry trapped uop
};

/** One control-store word. */
struct MicroOp
{
    Dp dp = Dp::Nop;
    Mem mem = Mem::None;
    Ib ib = Ib::None;
    Seq seq = Seq::Next;
    UAddr target = 0;

    /**
     * Function-specific small argument: explicit memory access size
     * in bytes (0 = current operand size), ExecStep phase id, or
     * pending-result index for WriteResult/RegWriteSpec.
     */
    uint16_t arg = 0;
};

} // namespace upc780::ucode

#endif // UPC780_UCODE_UOP_HH
