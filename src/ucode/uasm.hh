/**
 * @file
 * Microassembler: a small builder used by microprogram.cc to lay out
 * routines in the control store, assign each word its Table 8 activity
 * row, and register analyzer annotations.
 */

#ifndef UPC780_UCODE_UASM_HH
#define UPC780_UCODE_UASM_HH

#include "ucode/controlstore.hh"
#include "ucode/uop.hh"

namespace upc780::ucode
{

/** Convenience constructor for a control word. */
inline MicroOp
uop(Dp dp, Mem mem = Mem::None, Ib ib = Ib::None, Seq seq = Seq::Next,
    UAddr target = 0, uint16_t arg = 0)
{
    return MicroOp{dp, mem, ib, seq, target, arg};
}

/** Builder over a MicrocodeImage. */
class MicroAssembler
{
  public:
    explicit MicroAssembler(MicrocodeImage &image);

    /** Set the activity row assigned to subsequently emitted words. */
    void row(Row r) { row_ = r; }

    Row currentRow() const { return row_; }

    /** Address the next emitted word will occupy. */
    UAddr here() const;

    /** Emit one word; returns its address. */
    UAddr emit(const MicroOp &op);

    /** Emit @p n Nop/Next padding words (extra compute cycles). */
    void pad(uint32_t n);

    /** Reserve a word to patch later (forward references). */
    UAddr reserve();

    /** Patch a previously reserved or emitted word. */
    void patch(UAddr a, const MicroOp &op);

    /** Patch only the branch target of an existing word. */
    void patchTarget(UAddr a, UAddr target);

    MicrocodeImage &image() { return img_; }

  private:
    MicrocodeImage &img_;
    uint32_t next_;
    Row row_ = Row::None;
};

} // namespace upc780::ucode

#endif // UPC780_UCODE_UASM_HH
