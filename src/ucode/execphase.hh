/**
 * @file
 * ExecStep phase identifiers, shared between the microprogram (which
 * places them in micro-op arg fields) and the EBOX execute unit
 * (which interprets them). Each phase is one cycle of an iterative
 * instruction's execution.
 */

#ifndef UPC780_UCODE_EXECPHASE_HH
#define UPC780_UCODE_EXECPHASE_HH

#include <cstdint>

namespace upc780::ucode::phase
{

// Character / decimal string loops.
constexpr uint16_t StrRead = 1;    //!< read next source longword
constexpr uint16_t StrRead2 = 2;   //!< read next longword of stream 2
constexpr uint16_t StrWrite = 3;   //!< write next destination longword
constexpr uint16_t StrCheck = 4;   //!< compare/scan step; may end loop
constexpr uint16_t StrFinish = 5;  //!< set final R0-R5 and cc

// Register save/restore loops (PUSHR/POPR/CALL/RET/SVPCTX/LDPCTX).
constexpr uint16_t PushReg = 10;   //!< push next register in mask
constexpr uint16_t PopReg = 11;    //!< pop next register in mask
constexpr uint16_t SaveReg = 12;   //!< store next register to PCB
constexpr uint16_t LoadReg = 13;   //!< load next register from PCB

// Procedure call / return.
constexpr uint16_t ReadMask = 20;  //!< read entry mask word at dst
constexpr uint16_t SetupFrame = 21;
constexpr uint16_t PushNumarg = 22;
constexpr uint16_t PushPc = 23;
constexpr uint16_t PushFp = 24;
constexpr uint16_t PushAp = 25;
constexpr uint16_t PushMask = 26;
constexpr uint16_t PushHandler = 27;
constexpr uint16_t FinishCall = 28;
constexpr uint16_t ReadFrame = 29; //!< read next frame longword (RET)
constexpr uint16_t FinishRet = 30;

// Subroutine linkage.
constexpr uint16_t PopPc = 35;
constexpr uint16_t SetTarget = 36;

// Change-mode / REI.
constexpr uint16_t PushPsl = 40;
constexpr uint16_t PushCode = 41;
constexpr uint16_t ReadVector = 42;
constexpr uint16_t EnterKernel = 43;
constexpr uint16_t PopPsl = 44;
constexpr uint16_t RestorePsl = 45;

// Context switch.
constexpr uint16_t FinishSave = 50;
constexpr uint16_t FinishLoad = 51;

// Case branch.
constexpr uint16_t CaseRead = 60;
constexpr uint16_t CaseTarget = 61;
constexpr uint16_t CaseFall = 62;

// Bit field.
constexpr uint16_t FieldRead = 70;  //!< read longword(s) holding field
constexpr uint16_t FieldRead2 = 71; //!< second longword if spanning
constexpr uint16_t FieldOp = 72;    //!< extract / insert / find
constexpr uint16_t FieldWrite = 73; //!< write back modified longword
constexpr uint16_t FieldWrite2 = 74;
constexpr uint16_t BbRead = 75;     //!< read byte holding branch bit
constexpr uint16_t BbWrite = 76;    //!< write byte for BBxS/BBxC forms

// Queue instructions.
constexpr uint16_t QueRead = 80;
constexpr uint16_t QueWrite = 81;
constexpr uint16_t QueFinish = 82;

// POLY evaluation loop.
constexpr uint16_t PolyRead = 85;
constexpr uint16_t PolyStep = 86;

} // namespace upc780::ucode::phase

#endif // UPC780_UCODE_EXECPHASE_HH
