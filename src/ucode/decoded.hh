/**
 * @file
 * Pre-decoded control store: the per-cycle interpreter's view of the
 * microprogram.
 *
 * The assembled MicrocodeImage stores each word as a MicroOp whose
 * four fields (dp, mem, ib, seq) the legacy EBOX dispatcher re-parses
 * through nested switches every cycle. The decoded image flattens each
 * word, once per image, into a DecodedRow carrying a fused handler id
 * (the combination of the four fields the threaded dispatcher jumps
 * through in one indirect branch), the word's static obs cycle
 * classification, and the superblock run length used by the micro-
 * trace cache (consecutive pure-padding words executed in one batched
 * inner loop).
 *
 * Decoded images are immutable and shared copy-on-write across
 * machines and worker threads: a registry keyed on the source image's
 * identity hands out shared_ptrs, so the parallel engine's N workers
 * decode each image exactly once. An EBOX re-derives its pointer from
 * its (config-owned) MicrocodeImage both at construction and on
 * snapshot restore — decoded state is never serialized, so a restore
 * can never observe a stale decode.
 */

#ifndef UPC780_UCODE_DECODED_HH
#define UPC780_UCODE_DECODED_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "ucode/uop.hh"

namespace upc780::ucode
{

struct MicrocodeImage;

/** How the EBOX dispatches microinstructions. */
enum class DispatchMode : uint8_t
{
    Switch,    //!< legacy reference: nested switches over raw MicroOps
    Threaded,  //!< decoded rows + computed-goto + micro-trace cache
};

/** Runtime-selected dispatch mode: UPC780_DISPATCH env, else the
 *  UPC780_DISPATCH CMake default. */
DispatchMode dispatchMode();

std::string_view dispatchModeName(DispatchMode m);

/**
 * Fused handler of one decoded control-store word. Each value names a
 * (dp, mem, ib, seq) combination hot enough in the shipped
 * microprogram to deserve a straight-line handler; everything else
 * (including any word of a defective test image) takes Generic, which
 * runs the legacy interpreter body for that word and is therefore
 * correct for arbitrary field combinations.
 */
enum class Hx : uint8_t
{
    Generic,          //!< full legacy cycle body (always correct)
    Pad,              //!< nop/-/-/next: ExecCost padding; batchable
    Decode,           //!< the I-Decode word (nop/-/decop/specdisp)
    SpecHead,         //!< address-calc head, ib=decspec, seq=next
    SpecOperand,      //!< reg/lit/imm operand latch, seq=specdisp
    OperandMdrRead,   //!< opnd.mdr / rdv / specdisp (memory operand)
    WriteResultSpec,  //!< wres / wrv / specdisp (result write-back)
    OperandAddrDisp,  //!< opnd.addr / - / specdisp (address operand)
    NopSpecDispatch,  //!< nop / - / specdisp (dispatch-only word)
    ExecNext,         //!< exec / - / next (one-cycle execute)
    ExecStepNext,     //!< exec.step / - / next (non-memory step)
    LoopDecJif,       //!< loopdec / - / jumpif (iteration control)
    BranchDisp,       //!< brtgt / bdisp / next (displacement fetch)
    TakeBranchDecode, //!< take / - / decnext (taken-branch retire)
    ExecSpecDispatch, //!< exec / - / specdisp (execute, then write specs)
    ExecBdispCond,    //!< exec / bdisp / decnextifnot (loop-branch test)
    BranchTargetNext, //!< brtgt / - / next (target from latched disp)
    NumHandlers,
};

std::string_view hxName(Hx h);

/** One pre-decoded control-store row (16 bytes). */
struct DecodedRow
{
    MicroOp op;            //!< verbatim copy of the source word
    Hx h = Hx::Generic;    //!< fused handler
    uint8_t memRead : 1;   //!< static obs class: counted read cycle
    uint8_t memWrite : 1;  //!< static obs class: counted write cycle
    uint16_t runLen = 0;   //!< pad-superblock length from here (Pad only)
    UAddr self = 0;        //!< own control-store address

    DecodedRow() : memRead(0), memWrite(0) {}
};

/** The decoded twin of one MicrocodeImage. */
struct DecodedImage
{
    const MicrocodeImage *source = nullptr;
    std::array<DecodedRow, ControlStoreSize> rows{};
};

/**
 * Decode @p img (or return the cached decode). The registry is keyed
 * on image identity (address), which is sound because every image in
 * the system — the two shipped singletons and any MachineConfig::image
 * override — is immutable for the lifetime of the machines running it.
 */
std::shared_ptr<const DecodedImage> decodedImage(const MicrocodeImage &img);

/** Classify one word into its fused handler (exported for audits). */
Hx classifyUop(const MicroOp &op);

/**
 * Audit a decoded image against its source: every row must copy its
 * source word verbatim, carry the handler classifyUop derives, agree
 * with the word's static read/write cycle class, and chain correct
 * pad-run lengths. Returns human-readable findings; empty means clean.
 * tools/ulint runs this so UL013-UL015, which audit cycle classes and
 * counter effects over the decoded matrix, rest on a verified decode.
 */
std::vector<std::string> verifyDecoded(const MicrocodeImage &img,
                                       const DecodedImage &dec);

} // namespace upc780::ucode

#endif // UPC780_UCODE_DECODED_HH
