#include "ucode/decoded.hh"

#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "ucode/controlstore.hh"

namespace upc780::ucode
{

DispatchMode
dispatchMode()
{
#ifndef UPC780_DISPATCH_DEFAULT_THREADED
#define UPC780_DISPATCH_DEFAULT_THREADED 1
#endif
    static const DispatchMode mode = [] {
        DispatchMode m = UPC780_DISPATCH_DEFAULT_THREADED
                             ? DispatchMode::Threaded
                             : DispatchMode::Switch;
        if (const char *env = std::getenv("UPC780_DISPATCH")) {
            if (std::strcmp(env, "switch") == 0) {
                m = DispatchMode::Switch;
            } else if (std::strcmp(env, "threaded") == 0) {
                m = DispatchMode::Threaded;
            } else if (*env) {
                warn("UPC780_DISPATCH='%s' is not 'threaded' or "
                     "'switch'; using %s",
                     env, std::string(dispatchModeName(m)).c_str());
            }
        }
        return m;
    }();
    return mode;
}

std::string_view
dispatchModeName(DispatchMode m)
{
    return m == DispatchMode::Threaded ? "threaded" : "switch";
}

std::string_view
hxName(Hx h)
{
    switch (h) {
      case Hx::Generic:
        return "generic";
      case Hx::Pad:
        return "pad";
      case Hx::Decode:
        return "decode";
      case Hx::SpecHead:
        return "spec-head";
      case Hx::SpecOperand:
        return "spec-operand";
      case Hx::OperandMdrRead:
        return "operand-mdr-read";
      case Hx::WriteResultSpec:
        return "write-result";
      case Hx::OperandAddrDisp:
        return "operand-addr";
      case Hx::NopSpecDispatch:
        return "nop-specdisp";
      case Hx::ExecNext:
        return "exec-next";
      case Hx::ExecStepNext:
        return "exec-step-next";
      case Hx::LoopDecJif:
        return "loopdec-jif";
      case Hx::BranchDisp:
        return "branch-disp";
      case Hx::TakeBranchDecode:
        return "take-branch-decode";
      case Hx::ExecSpecDispatch:
        return "exec-specdisp";
      case Hx::ExecBdispCond:
        return "exec-bdisp-cond";
      case Hx::BranchTargetNext:
        return "branch-target";
      default:
        return "?";
    }
}

Hx
classifyUop(const MicroOp &op)
{
    // Handlers with a memory function or an IB pull are specialized
    // only for the exact field combinations their straight-line bodies
    // implement; anything else is Generic by construction.
    if (op.mem == Mem::None && op.ib == Ib::None) {
        switch (op.dp) {
          case Dp::Nop:
            if (op.seq == Seq::Next)
                return Hx::Pad;
            if (op.seq == Seq::SpecDispatch)
                return Hx::NopSpecDispatch;
            return Hx::Generic;
          case Dp::OperandAddr:
            return op.seq == Seq::SpecDispatch ? Hx::OperandAddrDisp
                                               : Hx::Generic;
          case Dp::Exec:
            if (op.seq == Seq::Next)
                return Hx::ExecNext;
            if (op.seq == Seq::SpecDispatch)
                return Hx::ExecSpecDispatch;
            return Hx::Generic;
          case Dp::ExecStep:
            return op.seq == Seq::Next ? Hx::ExecStepNext : Hx::Generic;
          case Dp::LoopDec:
            return op.seq == Seq::JumpIfFlag ? Hx::LoopDecJif
                                             : Hx::Generic;
          case Dp::BranchTarget:
            return op.seq == Seq::Next ? Hx::BranchTargetNext
                                       : Hx::Generic;
          case Dp::TakeBranch:
            return op.seq == Seq::DecodeNext ? Hx::TakeBranchDecode
                                             : Hx::Generic;
          default:
            return Hx::Generic;
        }
    }

    if (op.mem == Mem::None && op.ib == Ib::DecodeOp)
        return (op.dp == Dp::Nop && op.seq == Seq::SpecDispatch)
                   ? Hx::Decode
                   : Hx::Generic;

    if (op.mem == Mem::None && op.ib == Ib::DecodeSpec) {
        if (op.seq == Seq::Next) {
            switch (op.dp) {
              case Dp::SpecLoadReg:
              case Dp::SpecLoadRegDisp:
              case Dp::SpecLoadAbs:
              case Dp::SpecAutoInc:
              case Dp::SpecAutoDec:
                return Hx::SpecHead;
              default:
                return Hx::Generic;
            }
        }
        if (op.seq == Seq::SpecDispatch) {
            switch (op.dp) {
              case Dp::OperandFromReg:
              case Dp::OperandFromLit:
              case Dp::OperandFromImm:
              case Dp::RegWriteSpec:
                return Hx::SpecOperand;
              default:
                return Hx::Generic;
            }
        }
        return Hx::Generic;
    }

    if (op.mem == Mem::None && op.ib == Ib::GetBranchDisp) {
        if (op.dp == Dp::BranchTarget && op.seq == Seq::Next)
            return Hx::BranchDisp;
        if (op.dp == Dp::Exec && op.seq == Seq::DecodeNextIfNotFlag)
            return Hx::ExecBdispCond;
        return Hx::Generic;
    }

    if (op.mem == Mem::ReadV && op.ib == Ib::None &&
        op.dp == Dp::OperandFromMdr && op.seq == Seq::SpecDispatch)
        return Hx::OperandMdrRead;

    if (op.mem == Mem::WriteV && op.ib == Ib::None &&
        op.dp == Dp::WriteResult && op.seq == Seq::SpecDispatch)
        return Hx::WriteResultSpec;

    return Hx::Generic;
}

namespace
{

void
decodeInto(const MicrocodeImage &img, DecodedImage &d)
{
    d.source = &img;
    for (uint32_t a = 0; a < ControlStoreSize; ++a) {
        DecodedRow &r = d.rows[a];
        r.op = img.ops[a];
        r.h = classifyUop(r.op);
        r.memRead =
            r.op.mem == Mem::ReadV || r.op.mem == Mem::ReadP ? 1 : 0;
        r.memWrite = r.op.mem == Mem::WriteV ? 1 : 0;
        r.self = static_cast<UAddr>(a);
    }
    // Micro-trace superblocks: a Pad row's runLen is the number of
    // consecutive Pad rows starting at it, computed back to front so
    // each run is linked in one pass. The batch executor consumes a
    // whole run per dispatch.
    for (uint32_t a = ControlStoreSize; a-- > 0;) {
        DecodedRow &r = d.rows[a];
        if (r.h != Hx::Pad) {
            r.runLen = 0;
        } else if (a + 1 < ControlStoreSize &&
                   d.rows[a + 1].h == Hx::Pad) {
            r.runLen = static_cast<uint16_t>(
                d.rows[a + 1].runLen < 0xffff ? d.rows[a + 1].runLen + 1
                                              : 0xffff);
        } else {
            r.runLen = 1;
        }
    }
}

} // namespace

std::shared_ptr<const DecodedImage>
decodedImage(const MicrocodeImage &img)
{
    static std::mutex mu;
    static std::map<const MicrocodeImage *,
                    std::weak_ptr<const DecodedImage>>
        cache;

    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(&img);
    if (it != cache.end()) {
        if (auto sp = it->second.lock())
            return sp;
    }
    auto d = std::make_shared<DecodedImage>();
    decodeInto(img, *d);
    cache[&img] = d;
    return d;
}

std::vector<std::string>
verifyDecoded(const MicrocodeImage &img, const DecodedImage &dec)
{
    std::vector<std::string> findings;
    auto flag = [&](uint32_t a, const std::string &what) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%04x: ", a);
        findings.push_back(buf + what);
    };

    if (dec.source != &img)
        findings.push_back("decoded image source does not identify "
                           "the audited image");

    for (uint32_t a = 0; a < ControlStoreSize; ++a) {
        const DecodedRow &r = dec.rows[a];
        const MicroOp &op = img.ops[a];
        if (std::memcmp(&r.op, &op, sizeof(MicroOp)) != 0) {
            flag(a, "decoded row does not copy its source word");
            continue;
        }
        if (r.h != classifyUop(op))
            flag(a, "fused handler disagrees with the word's fields");
        if (r.self != a)
            flag(a, "decoded row self-address mismatch");
        bool rd = op.mem == Mem::ReadV || op.mem == Mem::ReadP;
        bool wr = op.mem == Mem::WriteV;
        if ((r.memRead != 0) != rd || (r.memWrite != 0) != wr)
            flag(a, "static read/write cycle class mismatch");
        if (r.h == Hx::Pad) {
            uint16_t expect =
                (a + 1 < ControlStoreSize &&
                 dec.rows[a + 1].h == Hx::Pad &&
                 dec.rows[a + 1].runLen < 0xffff)
                    ? dec.rows[a + 1].runLen + 1
                    : 1;
            if (r.runLen != expect)
                flag(a, "pad superblock run length mismatch");
        } else if (r.runLen != 0) {
            flag(a, "non-pad row carries a superblock run length");
        }
    }
    return findings;
}

} // namespace upc780::ucode
