#include "os/kernel.hh"

#include <cmath>

#include "arch/assembler.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "mmu/pagetable.hh"
#include "mmu/prreg.hh"
#include "obs/trace.hh"

namespace upc780::os
{

using namespace upc780::arch;
using namespace upc780::mmu;

VmsLite::VmsLite(cpu::Vax780 &machine, const OsConfig &config)
    : machine_(machine), cfg_(config), rng_(config.seed)
{
    timer_ = std::make_unique<IntervalTimer>(cfg_.timerPeriodCycles);
    terminal_ = std::make_unique<RteTerminal>();
}

int
VmsLite::addProcess(const ProcessImage &image)
{
    if (booted_)
        sim_throw(ConfigError, "addProcess after boot");
    pendingImages_.push_back(image);
    return static_cast<int>(pendingImages_.size());
}

void
VmsLite::physWrite(PAddr pa, uint32_t n, uint64_t v)
{
    machine_.memsys().memory().write(pa, n, v);
}

void
VmsLite::buildSystemMap()
{
    // Identity-map the low SysMappedBytes of physical memory into S0.
    PageTableBuilder builder(machine_.memsys().memory(),
                             pmap::SysPageTable);
    uint32_t npte = pmap::SysMappedBytes / PageBytes;
    // The builder's cursor is used for process tables; the system
    // table lives at a fixed address.
    machine_.memsys().memory().clear(pmap::SysPageTable, 4 * npte);
    for (uint32_t vpn = 0; vpn < npte; ++vpn) {
        machine_.memsys().memory().write(pmap::SysPageTable + 4 * vpn, 4,
                                         pte::make(vpn));
    }
}

void
VmsLite::buildKernelCode()
{
    Assembler a(vmap::KernelCode);

    const auto tickcnt = Operand::abs(kdata::TickCount);
    const auto flag = Operand::abs(kdata::ReschedFlag);
    const auto syscnt = Operand::abs(kdata::SyscallCount);
    const uint8_t sirr = static_cast<uint8_t>(mmu::pr::SIRR);

    // ----- boot ---------------------------------------------------------
    bootVa_ = a.pc();
    a.emit(Op::MOVL, {Operand::lit(assist::PickFirst), Operand::reg(0)});
    a.emit(Op::XFC, {});
    a.emit(Op::LDPCTX, {});
    // Fresh and switched-out processes resume here (their PCB.PC is
    // pointed at this REI by the scheduler assist).
    schedResumeVa_ = a.pc();
    a.emit(Op::REI, {});

    // ----- interval-clock ISR (interrupt stack, IPL 24) -------------------
    const auto forkflag = Operand::abs(kdata::ForkFlag);
    a.align(4);
    timerIsrVa_ = a.pc();
    {
        a.emit(Op::PUSHR, {Operand::lit(0x3F)});
        a.emit(Op::INCL, {tickcnt});
        a.emit(Op::MOVL, {Operand::lit(assist::TimerTick),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::POPR, {Operand::lit(0x3F)});
        Label no_fork = a.newLabel();
        a.emit(Op::TSTL, {forkflag});
        a.emitBr(Op::BEQL, no_fork);
        a.emit(Op::CLRL, {forkflag});
        a.emit(Op::MTPR, {Operand::lit(vec::Fork), Operand::lit(sirr)});
        a.bind(no_fork);
        a.emit(Op::TSTL, {flag});
        Label done = a.newLabel();
        a.emitBr(Op::BEQL, done);
        a.emit(Op::CLRL, {flag});
        a.emit(Op::MTPR, {Operand::lit(vec::Resched),
                          Operand::lit(sirr)});
        a.bind(done);
        a.emit(Op::REI, {});
    }

    // ----- fork-level software ISR (kernel stack, IPL 6) -------------------
    // Models VMS's fork queue: deferred I/O completion processing.
    a.align(4);
    forkIsrVa_ = a.pc();
    {
        a.emit(Op::PUSHR, {Operand::lit(0x3F)});
        a.emit(Op::INCL, {Operand::abs(kdata::ForkCount)});
        a.emit(Op::MOVL, {Operand::lit(assist::ForkWork),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::POPR, {Operand::lit(0x3F)});
        a.emit(Op::REI, {});
    }

    // ----- terminal-mux ISR (interrupt stack, IPL 20) -----------------------
    a.align(4);
    termIsrVa_ = a.pc();
    {
        a.emit(Op::PUSHR, {Operand::lit(0x3F)});
        a.emit(Op::MOVL, {Operand::lit(assist::TermEvent),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::POPR, {Operand::lit(0x3F)});
        a.emit(Op::TSTL, {flag});
        Label done = a.newLabel();
        a.emitBr(Op::BEQL, done);
        a.emit(Op::CLRL, {flag});
        a.emit(Op::MTPR, {Operand::lit(vec::Resched),
                          Operand::lit(sirr)});
        a.bind(done);
        a.emit(Op::REI, {});
    }

    // ----- rescheduling software interrupt (kernel stack, IPL 3) ------------
    a.align(4);
    schedIsrVa_ = a.pc();
    {
        a.emit(Op::SVPCTX, {});
        a.emit(Op::MOVL, {Operand::lit(assist::PickNext),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::LDPCTX, {});
        // LDPCTX transfers to the loaded PCB.PC (schedResumeVa_).
    }

    // ----- CHMK system-service gate (kernel stack) ----------------------------
    a.align(4);
    chmkIsrVa_ = a.pc();
    {
        a.emit(Op::PUSHR, {Operand::lit(0x3F)});
        a.emit(Op::INCL, {syscnt});
        // The change-mode code sits above the six saved registers.
        a.emit(Op::MOVL, {Operand::disp(24, reg::SP), Operand::reg(1)});
        a.emit(Op::MOVL, {Operand::lit(assist::Syscall),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::POPR, {Operand::lit(0x3F)});
        a.emit(Op::ADDL2, {Operand::lit(4), Operand::reg(reg::SP)});
        a.emit(Op::TSTL, {flag});
        Label done = a.newLabel();
        a.emitBr(Op::BEQL, done);
        a.emit(Op::CLRL, {flag});
        a.emit(Op::MTPR, {Operand::lit(vec::Resched),
                          Operand::lit(sirr)});
        a.bind(done);
        a.emit(Op::REI, {});
    }

    // ----- machine-check handler (interrupt stack, IPL 31) --------------------
    // The microcode pushed [code][PC][PSL]; the handler logs the event
    // and applies the recovery policy through the assist (correctable:
    // resume; uncorrectable: terminate the afflicted process), then
    // pops the code and REIs — the paper's machines rode through
    // these errors the same way.
    a.align(4);
    mcheckIsrVa_ = a.pc();
    {
        a.emit(Op::PUSHR, {Operand::lit(0x3F)});
        a.emit(Op::INCL, {Operand::abs(kdata::McheckCount)});
        // The machine-check code sits above the six saved registers.
        a.emit(Op::MOVL, {Operand::disp(24, reg::SP), Operand::reg(1)});
        a.emit(Op::MOVL, {Operand::lit(assist::MachineCheck),
                          Operand::reg(0)});
        a.emit(Op::XFC, {});
        a.emit(Op::POPR, {Operand::lit(0x3F)});
        a.emit(Op::ADDL2, {Operand::lit(4), Operand::reg(reg::SP)});
        a.emit(Op::TSTL, {flag});
        Label done = a.newLabel();
        a.emitBr(Op::BEQL, done);
        a.emit(Op::CLRL, {flag});
        a.emit(Op::MTPR, {Operand::lit(vec::Resched),
                          Operand::lit(sirr)});
        a.bind(done);
        a.emit(Op::REI, {});
    }

    // ----- the Null process --------------------------------------------------
    // "Branch to self, awaiting an interrupt" (paper §2.2).
    a.align(4);
    idleVa_ = a.pc();
    {
        Label self = a.here();
        a.emitBr(Op::BRB, self);
    }

    const auto &bytes = a.finish();
    machine_.memsys().memory().load(
        pmap::KernelBase, bytes.data(),
        static_cast<uint32_t>(bytes.size()));
}

void
VmsLite::buildScb()
{
    auto set_vec = [&](uint32_t v, VAddr handler, bool istack) {
        physWrite(pmap::Scb + 4 * v, 4, handler | (istack ? 1u : 0u));
    };
    set_vec(vec::MachineCheck, mcheckIsrVa_, true);
    set_vec(vec::Resched, schedIsrVa_, false);
    set_vec(vec::Fork, forkIsrVa_, false);
    set_vec(vec::Terminal, termIsrVa_, true);
    set_vec(vec::Timer, timerIsrVa_, true);
    for (uint32_t i = 0; i < 4; ++i)
        set_vec(vec::Chmk + i, chmkIsrVa_, false);
}

void
VmsLite::installProcess(int pid, const ProcessImage *image)
{
    Process p;
    p.isIdle = (image == nullptr);
    VAddr kbase = vmap::ProcKernelBase +
                  static_cast<uint32_t>(pid) * vmap::ProcKernelStride;
    p.pcbVa = kbase;
    p.kstackTop = kbase + vmap::ProcKernelStride;
    p.quantumLeft = cfg_.quantumTicks;
    p.thinkMean = image ? image->thinkMeanCycles : 0.0;

    PAddr kbase_pa = kbase - vmap::S0Base;

    VAddr entry;
    uint32_t user_psl;
    PAddr p0tbl_pa = 0;
    uint32_t p0lr = 0;
    VAddr p1br = 0;
    uint32_t p1lr = 0;
    VAddr usp = 0;

    if (image) {
        // Allocate and map P0 pages, then load the image at VA 0.
        uint32_t pages = image->p0Pages;
        uint32_t img_pages = static_cast<uint32_t>(
            (image->p0Image.size() + PageBytes - 1) / PageBytes);
        if (img_pages > pages)
            sim_throw(ConfigError, "process image larger than its P0 region");
        p0tbl_pa = tableAlloc_;
        tableAlloc_ += 4 * pages;
        tableAlloc_ = (tableAlloc_ + 63u) & ~63u;
        if (tableAlloc_ > pmap::ProcRegion)
            sim_throw(ConfigError, "process page-table region exhausted");
        for (uint32_t vpn = 0; vpn < pages; ++vpn) {
            uint32_t pfn = (procAlloc_ >> PageShift) + vpn;
            physWrite(p0tbl_pa + 4 * vpn, 4, pte::make(pfn));
        }
        machine_.memsys().memory().load(
            procAlloc_, image->p0Image.data(),
            static_cast<uint32_t>(image->p0Image.size()));
        procAlloc_ += pages * PageBytes;

        // The user stack lives at the top of the P1 (control) region,
        // as under VMS. The P1 page table is indexed so that P1BR
        // points at the (virtual) PTE for VPN 0; only the top
        // stack_pages entries exist.
        const uint32_t stack_pages = image->p1StackPages;
        const uint32_t first_vpn = (1u << 21) - stack_pages;
        PAddr p1tbl_pa = tableAlloc_;
        tableAlloc_ += 4 * stack_pages;
        tableAlloc_ = (tableAlloc_ + 63u) & ~63u;
        for (uint32_t i = 0; i < stack_pages; ++i) {
            uint32_t pfn = (procAlloc_ >> PageShift) + i;
            physWrite(p1tbl_pa + 4 * i, 4, pte::make(pfn));
        }
        procAlloc_ += stack_pages * PageBytes;
        if (procAlloc_ >= machine_.memsys().memory().size())
            sim_throw(ConfigError, "physical memory exhausted by process images");
        p1br = vmap::sysVa(p1tbl_pa) - 4 * first_vpn;
        p1lr = first_vpn;

        p0lr = pages;
        entry = image->entry;
        usp = 0x80000000u;  // top of P1; first push at 0x7FFFFFFC
        user_psl = 3u << psl::CurModeShift;  // user mode, IPL 0
    } else {
        entry = idleVa_;
        user_psl = 0;  // kernel mode, IPL 0 (interruptible idle loop)
        usp = 0;
    }

    // Seed the kernel stack with the frame the first REI pops.
    VAddr ksp = p.kstackTop - 8;
    physWrite(ksp - vmap::S0Base, 4, entry);
    physWrite(ksp - vmap::S0Base + 4, 4, user_psl);

    // Initialize the PCB.
    PAddr pcb_pa = kbase_pa;
    for (uint32_t i = 0; i < pcb::NumWords; ++i)
        physWrite(pcb_pa + 4 * i, 4, 0);
    physWrite(pcb_pa + 4 * pcb::Sp, 4, ksp);
    physWrite(pcb_pa + 4 * pcb::Pc, 4, schedResumeVa_);
    physWrite(pcb_pa + 4 * pcb::Psl, 4, 3u << psl::IplShift);
    physWrite(pcb_pa + 4 * pcb::P0br, 4,
              image ? vmap::sysVa(p0tbl_pa) : 0);
    physWrite(pcb_pa + 4 * pcb::P0lr, 4, p0lr);
    physWrite(pcb_pa + 4 * pcb::P1br, 4, p1br);
    physWrite(pcb_pa + 4 * pcb::P1lr, 4, p1lr);
    physWrite(pcb_pa + 4 * pcb::Usp, 4, usp);

    procs_.push_back(p);
}

void
VmsLite::boot()
{
    if (booted_)
        sim_throw(ConfigError, "double boot");
    if (pendingImages_.empty())
        sim_throw(ConfigError, "boot with no processes");
    booted_ = true;

    buildSystemMap();
    buildKernelCode();
    buildScb();

    installProcess(0, nullptr);  // the Null process
    for (size_t i = 0; i < pendingImages_.size(); ++i)
        installProcess(static_cast<int>(i) + 1, &pendingImages_[i]);

    machine_.addDevice(timer_.get());
    machine_.addDevice(terminal_.get());

    cpu::Ebox &e = machine_.ebox();
    e.setOsAssist([this](cpu::Ebox &ebox) { assist(ebox); });
    e.writePr(mmu::pr::SBR, pmap::SysPageTable);
    e.writePr(mmu::pr::SLR, pmap::SysMappedBytes / PageBytes);
    e.writePr(mmu::pr::SCBB, pmap::Scb);
    e.writePr(mmu::pr::ISP, vmap::IStackTop);
    e.setPsl(31u << psl::IplShift);  // kernel, interrupts blocked
    e.gpr(reg::SP) = vmap::BootStackTop;
    e.writePr(mmu::pr::MAPEN, 1);
    e.reset(bootVa_, true);
    e.setPsl(31u << psl::IplShift);
}

bool
VmsLite::anyRunnableProcess() const
{
    for (size_t i = 1; i < procs_.size(); ++i)
        if (procs_[i].state == Process::State::Runnable)
            return true;
    return false;
}

void
VmsLite::requestResched(cpu::Ebox &ebox)
{
    ebox.backdoorWrite(kdata::ReschedFlag, 4, 1);
    ++stats_.reschedRequests;
    obs::count(obs::Ev::OsReschedRequests);
}

void
VmsLite::assist(cpu::Ebox &ebox)
{
    switch (ebox.gpr(0)) {
      case assist::PickFirst:
        pickNext(ebox, true);
        return;
      case assist::PickNext:
        pickNext(ebox, false);
        return;
      case assist::TimerTick:
        onTimerTick(ebox);
        return;
      case assist::TermEvent:
        onTermEvent(ebox);
        return;
      case assist::Syscall:
        onSyscall(ebox, ebox.gpr(1));
        return;
      case assist::MachineCheck:
        onMachineCheck(ebox, ebox.gpr(1));
        return;
      case assist::ForkWork:
        // Fork processing is bookkeeping only in this model.
        return;
      default:
        sim_throw(GuestError, "XFC with unknown assist function %u", ebox.gpr(0));
    }
}

void
VmsLite::pickNext(cpu::Ebox &ebox, bool first)
{
    if (!first) {
        // Point the outgoing context at the common resume code.
        ebox.backdoorWrite(procs_[current_].pcbVa + 4 * pcb::Pc, 4,
                           schedResumeVa_);
        ++stats_.contextSwitches;
        obs::count(obs::Ev::OsContextSwitches);
    }

    // Round-robin over runnable processes; the Null process runs when
    // nothing else can.
    int next = 0;
    size_t n = procs_.size();
    for (size_t k = 0; k < n - 1; ++k) {
        unsigned cand = 1 + static_cast<unsigned>(
            (rr_ - 1 + k) % (n - 1));
        if (procs_[cand].state == Process::State::Runnable) {
            next = static_cast<int>(cand);
            rr_ = cand + 1;
            if (rr_ >= n)
                rr_ = 1;
            break;
        }
    }

    current_ = next;
    procs_[next].quantumLeft = cfg_.quantumTicks;
    if (!first) {
        obs::event(obs::Cat::Os, obs::Code::CtxSwitch, machine_.cycles(),
                   static_cast<uint64_t>(next),
                   procs_[next].isIdle ? 1 : 0);
    }
    ebox.writePr(mmu::pr::PCBB, procs_[next].pcbVa);
    if (switchHook_)
        switchHook_(next, procs_[next].isIdle);
}

void
VmsLite::onTimerTick(cpu::Ebox &ebox)
{
    // Post fork-level work (I/O completion processing) on a fraction
    // of ticks, as a live VMS system does continuously.
    if (++tickCount_ % 4 == 0) {
        ebox.backdoorWrite(kdata::ForkFlag, 4, 1);
        ++stats_.forkRequests;
    }

    Process &cur = procs_[current_];
    if (cur.isIdle) {
        if (anyRunnableProcess())
            requestResched(ebox);
        return;
    }
    if (cur.quantumLeft > 0)
        --cur.quantumLeft;
    if (cur.quantumLeft == 0 && anyRunnableProcess())
        requestResched(ebox);
}

void
VmsLite::onTermEvent(cpu::Ebox &ebox)
{
    auto pids = terminal_->drainDue();
    bool woke = false;
    for (int pid : pids) {
        // A process killed by an uncorrectable machine check stays
        // dead: terminal input due to it is discarded.
        if (procs_[pid].state != Process::State::Blocked)
            continue;
        procs_[pid].state = Process::State::Runnable;
        woke = true;
    }
    if (woke && (procs_[current_].isIdle ||
                 procs_[current_].quantumLeft == 0)) {
        requestResched(ebox);
    }
}

void
VmsLite::onSyscall(cpu::Ebox &ebox, uint32_t code)
{
    ++stats_.syscalls;
    obs::count(obs::Ev::OsSyscalls);
    obs::event(obs::Cat::Os, obs::Code::Syscall, machine_.cycles(), code,
               static_cast<uint32_t>(current_));
    Process &cur = procs_[current_];
    switch (code) {
      case sys::TermWait: {
        cur.state = Process::State::Blocked;
        // Sample an exponential think time.
        double u = rng_.uniform();
        double think = -cur.thinkMean * std::log1p(-u);
        if (think < 1000.0)
            think = 1000.0;
        terminal_->scheduleInput(
            machine_.cycles() + static_cast<uint64_t>(think), current_);
        requestResched(ebox);
        return;
      }
      case sys::TermWrite:
        ++stats_.termWrites;
        return;
      case sys::GetTime:
        // The service gate saved R0-R5 with PUSHR before the assist
        // runs and restores them with POPR afterwards, so the return
        // value must be planted in the *saved* R1 slot (SP+4: PUSHR
        // pushes descending, leaving R0 at the top of the stack).
        ebox.backdoorWrite(ebox.gpr(arch::reg::SP) + 4, 4,
                           static_cast<uint32_t>(machine_.cycles()));
        return;
      case sys::Yield:
        requestResched(ebox);
        return;
      default:
        sim_throw(GuestError, "unknown system service %u", code);
    }
}

void
VmsLite::onMachineCheck(cpu::Ebox &ebox, uint32_t code)
{
    if (!fault::isMcheckCode(code))
        sim_throw(GuestError, "machine check with bad code 0x%08x", code);
    fault::FaultKind kind = fault::mcheckKind(code);
    bool corrected = fault::faultCorrectable(kind);
    ++stats_.machineChecks;
    if (errorLog_.size() < MaxErrorLogEntries)
        errorLog_.push_back({machine_.cycles(), current_, kind, corrected});

    if (corrected) {
        // The hardware corrected (ECC) or retried (SBI, parity) the
        // operation; the REI resumes the interrupted process with no
        // architectural damage.
        ++stats_.faultsCorrected;
        return;
    }

    // Uncorrectable: VMS policy is to terminate the afflicted process,
    // never the system. A fault caught in system/idle context is
    // logged only — the Null process has no state worth preserving.
    Process &cur = procs_[current_];
    if (!cur.isIdle && cur.state != Process::State::Terminated) {
        cur.state = Process::State::Terminated;
        ++stats_.processesTerminated;
        requestResched(ebox);
    }
}

size_t
VmsLite::liveUserProcesses() const
{
    size_t n = 0;
    for (size_t i = 1; i < procs_.size(); ++i)
        if (procs_[i].state != Process::State::Terminated)
            ++n;
    return n;
}

// --------------------------------------------------------------------------
// Checkpointing
// --------------------------------------------------------------------------

void
IntervalTimer::serialize(ByteWriter &w) const
{
    w.u64(nextAt_);
    w.b(pending_);
    w.u64(interrupts_.value());
}

void
IntervalTimer::deserialize(ByteReader &r)
{
    nextAt_ = r.u64();
    pending_ = r.b();
    interrupts_.set(r.u64());
}

namespace
{

/**
 * Access the protected container of a priority_queue. The terminal
 * queue's comparator orders only by time, so same-cycle events for
 * different pids pop in heap-array order; a drain-and-reinsert round
 * trip could legally reorder them. Serializing the heap array verbatim
 * keeps the restored queue *identical*, not merely equivalent.
 */
template <class PQ>
struct PqAccess : PQ
{
    static const typename PQ::container_type &
    container(const PQ &q)
    {
        return q.*&PqAccess::c;
    }

    static typename PQ::container_type &
    container(PQ &q)
    {
        return q.*&PqAccess::c;
    }
};

} // namespace

void
RteTerminal::serialize(ByteWriter &w) const
{
    const auto &events = PqAccess<decltype(queue_)>::container(queue_);
    w.u32(static_cast<uint32_t>(events.size()));
    for (const Event &e : events) {
        w.u64(e.at);
        w.i32(e.pid);
    }
    w.u64(now_);
    w.b(inService_);
    w.u64(interrupts_.value());
}

void
RteTerminal::deserialize(ByteReader &r)
{
    auto &events = PqAccess<decltype(queue_)>::container(queue_);
    events.resize(r.size32(1 << 20));
    for (Event &e : events) {
        e.at = r.u64();
        e.pid = r.i32();
    }
    now_ = r.u64();
    inService_ = r.b();
    interrupts_.set(r.u64());
}

void
VmsLite::serialize(ByteWriter &w) const
{
    if (!booted_)
        sim_throw(SnapshotError, "cannot checkpoint an unbooted kernel");
    for (uint64_t s : rng_.state())
        w.u64(s);

    w.u32(static_cast<uint32_t>(procs_.size()));
    for (const Process &p : procs_) {
        w.u8(static_cast<uint8_t>(p.state));
        w.b(p.isIdle);
        w.u32(p.pcbVa);
        w.u32(p.kstackTop);
        w.u32(p.quantumLeft);
        w.f64(p.thinkMean);
    }
    w.i32(current_);
    w.u32(rr_);
    w.u64(tickCount_);

    w.u64(stats_.contextSwitches);
    w.u64(stats_.reschedRequests);
    w.u64(stats_.forkRequests);
    w.u64(stats_.syscalls);
    w.u64(stats_.termWrites);
    w.u64(stats_.machineChecks);
    w.u64(stats_.faultsCorrected);
    w.u64(stats_.processesTerminated);

    w.u32(static_cast<uint32_t>(errorLog_.size()));
    for (const ErrorLogEntry &e : errorLog_) {
        w.u64(e.cycle);
        w.i32(e.pid);
        w.u8(static_cast<uint8_t>(e.kind));
        w.b(e.corrected);
    }

    timer_->serialize(w);
    terminal_->serialize(w);
}

void
VmsLite::deserialize(ByteReader &r)
{
    if (!booted_)
        sim_throw(SnapshotError, "cannot restore into an unbooted kernel");
    std::array<uint64_t, 4> s;
    for (uint64_t &v : s)
        v = r.u64();
    rng_.setState(s);

    const uint32_t np = r.u32();
    if (np != procs_.size())
        sim_throw(SnapshotError,
                  "snapshot kernel has %u processes but this machine "
                  "booted %zu", np, procs_.size());
    for (Process &p : procs_) {
        uint8_t st = r.u8();
        if (st > static_cast<uint8_t>(Process::State::Terminated))
            sim_throw(SnapshotError,
                      "snapshot kernel: bad process state %u", st);
        p.state = static_cast<Process::State>(st);
        p.isIdle = r.b();
        p.pcbVa = r.u32();
        p.kstackTop = r.u32();
        p.quantumLeft = r.u32();
        p.thinkMean = r.f64();
    }
    current_ = r.i32();
    if (current_ < 0 || static_cast<size_t>(current_) >= procs_.size())
        sim_throw(SnapshotError, "snapshot kernel: current pid %d out of "
                  "range", current_);
    rr_ = r.u32();
    tickCount_ = r.u64();

    stats_.contextSwitches = r.u64();
    stats_.reschedRequests = r.u64();
    stats_.forkRequests = r.u64();
    stats_.syscalls = r.u64();
    stats_.termWrites = r.u64();
    stats_.machineChecks = r.u64();
    stats_.faultsCorrected = r.u64();
    stats_.processesTerminated = r.u64();

    errorLog_.resize(r.size32(MaxErrorLogEntries));
    for (ErrorLogEntry &e : errorLog_) {
        e.cycle = r.u64();
        e.pid = r.i32();
        uint8_t k = r.u8();
        if (k >= static_cast<uint8_t>(fault::FaultKind::NumKinds))
            sim_throw(SnapshotError,
                      "snapshot kernel: bad error-log fault kind %u", k);
        e.kind = static_cast<fault::FaultKind>(k);
        e.corrected = r.b();
    }

    timer_->deserialize(r);
    terminal_->deserialize(r);
}

} // namespace upc780::os
