/**
 * @file
 * VMS-lite: the multiprogramming substrate the measurement runs on.
 *
 * The kernel is real VAX code (assembled at build time into system
 * space) for everything on the instruction-execution path — interrupt
 * service routines, the rescheduling software interrupt, the CHMK
 * system-service gate, SVPCTX/LDPCTX context switching, and the Null
 * (idle) process — so that operating-system execution contributes to
 * the measurements exactly as the paper insists it must (§1).
 * Policy decisions (run-queue choice, think-time sampling, terminal
 * event generation) live behind the XFC escape, playing the role of
 * the machine-specific RTE scripts and VMS data structures.
 */

#ifndef UPC780_OS_KERNEL_HH
#define UPC780_OS_KERNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "cpu/vax780.hh"
#include "fault/fault.hh"
#include "os/devices.hh"
#include "os/layout.hh"

namespace upc780::os
{

/** Kernel configuration. */
struct OsConfig
{
    /** Interval-clock period in cycles (real 780: 10 ms; scaled). */
    uint64_t timerPeriodCycles = 7000;
    /** Scheduler quantum in clock ticks. */
    uint32_t quantumTicks = 10;
    uint64_t seed = 0x05;
};

/** A process to load: its P0 image plus behavioural parameters. */
struct ProcessImage
{
    std::vector<uint8_t> p0Image;  //!< loaded at P0 VA 0
    arch::VAddr entry = 0;
    uint32_t p0Pages = 64;         //!< total mapped P0 pages
    uint32_t p1StackPages = 8;     //!< user stack pages at top of P1
    double thinkMeanCycles = 150000;  //!< terminal think time
};

/** Kernel statistics (cross-checks for Table 7). */
struct OsStats
{
    uint64_t contextSwitches = 0;
    uint64_t reschedRequests = 0;  //!< resched software interrupts
    uint64_t forkRequests = 0;     //!< fork-level software interrupts
    uint64_t syscalls = 0;
    uint64_t termWrites = 0;

    // Machine-check recovery (paper's machines rode through these).
    uint64_t machineChecks = 0;        //!< SCB vector 1 deliveries handled
    uint64_t faultsCorrected = 0;      //!< correctable: logged and resumed
    uint64_t processesTerminated = 0;  //!< uncorrectable: process killed

    uint64_t
    softIntRequests() const
    {
        return reschedRequests + forkRequests;
    }

    /**
     * Field-wise sum (composite construction). Associative and
     * commutative like Histogram::merge, so the parallel engine's
     * merge order cannot affect the composite.
     */
    void
    accumulate(const OsStats &o)
    {
        contextSwitches += o.contextSwitches;
        reschedRequests += o.reschedRequests;
        forkRequests += o.forkRequests;
        syscalls += o.syscalls;
        termWrites += o.termWrites;
        machineChecks += o.machineChecks;
        faultsCorrected += o.faultsCorrected;
        processesTerminated += o.processesTerminated;
    }
};

/** One VMS-style error-log entry written by the machine-check handler. */
struct ErrorLogEntry
{
    uint64_t cycle = 0;            //!< machine cycle of the handler run
    int pid = 0;                   //!< process scheduled at the time
    fault::FaultKind kind = fault::FaultKind::MemEccSingle;
    bool corrected = true;
};

/** The VMS-lite kernel. */
class VmsLite
{
  public:
    VmsLite(cpu::Vax780 &machine, const OsConfig &config = OsConfig{});

    /** Register a process before boot(); returns its pid (>= 1). */
    int addProcess(const ProcessImage &image);

    /**
     * Lay out memory, assemble the kernel, install devices, enable
     * mapping and start the machine in the first process.
     */
    void boot();

    /** Currently scheduled pid (0 = the Null process). */
    int currentPid() const { return current_; }

    bool idleScheduled() const { return current_ == 0; }

    /** Hook invoked on every context switch: (pid, is_idle). */
    void
    setSwitchHook(std::function<void(int, bool)> fn)
    {
        switchHook_ = std::move(fn);
    }

    const OsStats &stats() const { return stats_; }
    IntervalTimer &timer() { return *timer_; }
    RteTerminal &terminal() { return *terminal_; }
    size_t numProcesses() const { return procs_.size(); }

    /** Error-log entries recorded by the machine-check handler. */
    const std::vector<ErrorLogEntry> &errorLog() const { return errorLog_; }

    /** User processes not yet killed by an uncorrectable fault. */
    size_t liveUserProcesses() const;

    /**
     * Checkpoint the kernel's mutable state: scheduler, process
     * states, statistics, error log, RNG and both devices. The kernel
     * code, SCB, label addresses and per-process memory layout are
     * rebuilt identically by boot() and are not serialized; both sides
     * of a save/restore must therefore be booted with the same
     * processes, which the config hash guarantees.
     */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    struct Process
    {
        enum class State : uint8_t { Runnable, Blocked, Terminated };
        State state = State::Runnable;
        bool isIdle = false;
        arch::VAddr pcbVa = 0;
        arch::VAddr kstackTop = 0;
        uint32_t quantumLeft = 0;
        double thinkMean = 0;
    };

    void buildSystemMap();
    void buildKernelCode();
    void buildScb();
    void installProcess(int pid, const ProcessImage *image);

    /** Direct physical write helper for pre-boot setup. */
    void physWrite(arch::PAddr pa, uint32_t n, uint64_t v);

    void assist(cpu::Ebox &ebox);
    void pickNext(cpu::Ebox &ebox, bool first);
    void onTimerTick(cpu::Ebox &ebox);
    void onTermEvent(cpu::Ebox &ebox);
    void onSyscall(cpu::Ebox &ebox, uint32_t code);
    void onMachineCheck(cpu::Ebox &ebox, uint32_t code);
    void requestResched(cpu::Ebox &ebox);

    bool anyRunnableProcess() const;

    cpu::Vax780 &machine_;
    OsConfig cfg_;
    upc780::Rng rng_;

    std::vector<Process> procs_;  //!< index 0 is the Null process
    std::vector<ProcessImage> pendingImages_;
    int current_ = 0;
    unsigned rr_ = 1;  //!< round-robin pointer

    std::unique_ptr<IntervalTimer> timer_;
    std::unique_ptr<RteTerminal> terminal_;

    // Kernel label addresses (resolved during assembly).
    arch::VAddr bootVa_ = 0;
    arch::VAddr schedResumeVa_ = 0;
    arch::VAddr timerIsrVa_ = 0;
    arch::VAddr termIsrVa_ = 0;
    arch::VAddr schedIsrVa_ = 0;
    arch::VAddr forkIsrVa_ = 0;
    arch::VAddr chmkIsrVa_ = 0;
    arch::VAddr mcheckIsrVa_ = 0;
    arch::VAddr idleVa_ = 0;

    arch::PAddr procAlloc_ = pmap::ProcRegion;
    arch::PAddr tableAlloc_ = pmap::TableRegion;
    uint64_t tickCount_ = 0;

    OsStats stats_;
    std::vector<ErrorLogEntry> errorLog_;
    /** Error-log cap, matching VMS's bounded ERRLOG buffers. */
    static constexpr size_t MaxErrorLogEntries = 4096;
    std::function<void(int, bool)> switchHook_;
    bool booted_ = false;
};

} // namespace upc780::os

#endif // UPC780_OS_KERNEL_HH
