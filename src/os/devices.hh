/**
 * @file
 * Interrupting devices of the modeled system: the interval clock and
 * the terminal multiplexer fed by the Remote Terminal Emulator (RTE)
 * model. The paper's RTE was a PDP-11 replaying canned user scripts
 * into the VAX's terminal lines (§2.2); here the same role is played
 * by a wake-up event queue populated by the VMS-lite think-time model.
 */

#ifndef UPC780_OS_DEVICES_HH
#define UPC780_OS_DEVICES_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "cpu/vax780.hh"
#include "common/stats.hh"
#include "os/layout.hh"

namespace upc780::os
{

/** The interval clock: a periodic IPL-24 interrupt. */
class IntervalTimer : public cpu::Device
{
  public:
    explicit IntervalTimer(uint64_t period_cycles)
        : period_(period_cycles), nextAt_(period_cycles)
    {}

    void
    tick(uint64_t now) override
    {
        if (!pending_ && now >= nextAt_)
            pending_ = true;
    }

    bool
    requesting(uint32_t &level, uint32_t &vector) override
    {
        if (!pending_)
            return false;
        level = 24;
        vector = vec::Timer;
        return true;
    }

    void
    acknowledge() override
    {
        pending_ = false;
        nextAt_ += period_;
        ++interrupts_;
    }

    uint64_t interrupts() const { return interrupts_.value(); }

    /** tick() only tests now >= nextAt_, so one catch-up call at the
     *  end of a skipped window sets pending_ iff any per-cycle call
     *  in the window would have. */
    bool tickBatchable() const override { return true; }

    /** Checkpoint phase + pending flag + counter (kernel.cc). */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    uint64_t period_;
    uint64_t nextAt_;
    bool pending_ = false;
    upc780::Counter interrupts_;
};

/**
 * The RTE terminal multiplexer: raises an IPL-20 interrupt whenever a
 * simulated user's input becomes available (i.e. a scheduled process
 * wake-up time is reached).
 */
class RteTerminal : public cpu::Device
{
  public:
    /** Schedule terminal input for process @p pid at @p cycle. */
    void
    scheduleInput(uint64_t cycle, int pid)
    {
        queue_.push(Event{cycle, pid});
    }

    void
    tick(uint64_t now) override
    {
        now_ = now;
    }

    /** tick() just records the clock, so the last catch-up call
     *  leaves now_ exactly where per-cycle ticking would have. */
    bool tickBatchable() const override { return true; }

    bool
    requesting(uint32_t &level, uint32_t &vector) override
    {
        if (inService_ || queue_.empty() || queue_.top().at > now_)
            return false;
        level = 20;
        vector = vec::Terminal;
        return true;
    }

    void
    acknowledge() override
    {
        inService_ = true;
        ++interrupts_;
    }

    /**
     * Called by the kernel's terminal ISR (through the assist hook):
     * drain all due events, reporting the processes to wake.
     */
    std::vector<int>
    drainDue()
    {
        std::vector<int> pids;
        while (!queue_.empty() && queue_.top().at <= now_) {
            pids.push_back(queue_.top().pid);
            queue_.pop();
        }
        inService_ = false;
        return pids;
    }

    uint64_t interrupts() const { return interrupts_.value(); }
    bool idle() const { return queue_.empty(); }

    /** Checkpoint the event queue + service state (kernel.cc). */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    struct Event
    {
        uint64_t at;
        int pid;

        bool
        operator>(const Event &o) const
        {
            return at > o.at;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue_;
    uint64_t now_ = 0;
    bool inService_ = false;
    upc780::Counter interrupts_;
};

} // namespace upc780::os

#endif // UPC780_OS_DEVICES_HH
