/**
 * @file
 * VMS-lite memory layout, PCB format, SCB vector assignments, system
 * service numbers and XFC-assist function codes, shared between the
 * kernel builder, the execute unit and the workload layer.
 */

#ifndef UPC780_OS_LAYOUT_HH
#define UPC780_OS_LAYOUT_HH

#include <cstdint>

#include "arch/types.hh"

namespace upc780::os
{

using arch::PAddr;
using arch::VAddr;

// ----- physical memory map ------------------------------------------------
namespace pmap
{
constexpr PAddr Scb = 0x00001000;        //!< system control block
constexpr PAddr KernelBase = 0x00002000; //!< kernel code/data
constexpr PAddr SysPageTable = 0x00100000;
constexpr PAddr TableRegion = 0x00104000; //!< process page tables
constexpr PAddr ProcRegion = 0x00200000;  //!< process pages from here
constexpr uint32_t SysMappedBytes = 0x00200000; //!< S0 identity window
} // namespace pmap

// ----- system virtual layout -----------------------------------------------
namespace vmap
{
constexpr VAddr S0Base = 0x80000000;

constexpr VAddr
sysVa(PAddr pa)
{
    return S0Base + pa;
}

constexpr VAddr KernelCode = sysVa(pmap::KernelBase);
/** Kernel data page (flags, counters) follows the code region. */
constexpr VAddr KernelData = sysVa(0x00008000);
/** Interrupt stack top. */
constexpr VAddr IStackTop = sysVa(0x0000A000);
/** Boot stack top. */
constexpr VAddr BootStackTop = sysVa(0x0000B000);
/** Per-process kernel structures (PCB + kernel stack), 8 KB stride. */
constexpr VAddr ProcKernelBase = sysVa(0x00010000);
constexpr uint32_t ProcKernelStride = 0x2000;
} // namespace vmap

// ----- kernel data cells -----------------------------------------------------
namespace kdata
{
constexpr VAddr ReschedFlag = vmap::KernelData + 0x00;
constexpr VAddr TickCount = vmap::KernelData + 0x04;
constexpr VAddr SyscallCount = vmap::KernelData + 0x08;
constexpr VAddr ForkFlag = vmap::KernelData + 0x0C;
constexpr VAddr ForkCount = vmap::KernelData + 0x10;
constexpr VAddr McheckCount = vmap::KernelData + 0x14;
} // namespace kdata

// ----- PCB format (longword indices) ------------------------------------------
namespace pcb
{
constexpr uint32_t R0 = 0;   //!< R0..R11 at 0..11
constexpr uint32_t Ap = 12;
constexpr uint32_t Fp = 13;
constexpr uint32_t Sp = 14;  //!< kernel-mode SP
constexpr uint32_t Pc = 15;
constexpr uint32_t Psl = 16;
constexpr uint32_t P0br = 17;
constexpr uint32_t P0lr = 18;
constexpr uint32_t P1br = 19;
constexpr uint32_t P1lr = 20;
constexpr uint32_t Usp = 21;  //!< user-mode SP
constexpr uint32_t NumWords = 22;
} // namespace pcb

// ----- SCB vector numbers (SCB entry = handler VA | use-interrupt-stack) ------
namespace vec
{
/** Architectural machine-check vector (must equal cpu::McheckScbVector). */
constexpr uint32_t MachineCheck = 1;
constexpr uint32_t Resched = 3;   //!< software, runs on kernel stack
constexpr uint32_t Fork = 6;      //!< software fork level (I/O post)
constexpr uint32_t Terminal = 20; //!< RTE terminal mux (IPL 20)
constexpr uint32_t Timer = 24;    //!< interval clock (IPL 24)
constexpr uint32_t Chmk = 32;     //!< change-mode-to-kernel trap
} // namespace vec

// ----- system service (CHMK) codes ----------------------------------------------
namespace sys
{
constexpr uint32_t TermWait = 1;  //!< wait for terminal input (blocks)
constexpr uint32_t TermWrite = 2; //!< write terminal output
constexpr uint32_t GetTime = 3;   //!< read the interval clock
constexpr uint32_t Yield = 4;     //!< relinquish the processor
} // namespace sys

// ----- XFC assist function codes (in R0; argument in R1) -------------------------
namespace assist
{
constexpr uint32_t PickFirst = 1;
constexpr uint32_t PickNext = 2;
constexpr uint32_t TimerTick = 3;
constexpr uint32_t TermEvent = 4;
constexpr uint32_t Syscall = 5;
constexpr uint32_t ForkWork = 6;
constexpr uint32_t MachineCheck = 7;
} // namespace assist

} // namespace upc780::os

#endif // UPC780_OS_LAYOUT_HH
