#include "mem/cache.hh"

#include "common/bitfield.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "obs/counters.hh"

namespace upc780::mem
{

Cache::Cache(const CacheConfig &config, uint64_t seed)
    : config_(config), rng_(seed)
{
    if (!isPow2(config_.sizeBytes) || !isPow2(config_.blockBytes) ||
        config_.ways == 0) {
        sim_throw(ConfigError, "cache geometry must be power-of-two sized");
    }
    if (config_.sizeBytes % (config_.blockBytes * config_.ways) != 0)
        sim_throw(ConfigError, "cache size not divisible by way size");
    numSets_ = config_.sizeBytes / (config_.blockBytes * config_.ways);
    blockShift_ = static_cast<uint32_t>(log2i(config_.blockBytes));
    lines_.resize(static_cast<size_t>(numSets_) * config_.ways);
}

uint32_t
Cache::setIndex(PAddr pa) const
{
    return (pa >> blockShift_) & (numSets_ - 1);
}

uint32_t
Cache::tagOf(PAddr pa) const
{
    return pa >> (blockShift_ + log2i(numSets_));
}

int
Cache::lookup(uint32_t set, uint32_t tag) const
{
    for (uint32_t w = 0; w < config_.ways; ++w) {
        const Line &l = lines_[set * config_.ways + w];
        if (l.valid && l.tag == tag)
            return static_cast<int>(w);
    }
    return -1;
}

void
Cache::fill(uint32_t set, uint32_t tag)
{
    // Prefer an invalid way; otherwise random replacement, as in the
    // 780 hardware.
    uint32_t victim = config_.ways;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (!lines_[set * config_.ways + w].valid) {
            victim = w;
            break;
        }
    }
    if (victim == config_.ways)
        victim = static_cast<uint32_t>(rng_.below(config_.ways));
    Line &l = lines_[set * config_.ways + victim];
    l.valid = true;
    l.tag = tag;
}

bool
Cache::readAccess(PAddr pa, bool istream)
{
    if (istream)
        ++stats_.iReads;
    else
        ++stats_.dReads;
    obs::count(istream ? obs::Ev::CacheIReads : obs::Ev::CacheDReads);

    if (!config_.enabled) {
        if (istream)
            ++stats_.iReadMisses;
        else
            ++stats_.dReadMisses;
        obs::count(istream ? obs::Ev::CacheIReadMisses
                           : obs::Ev::CacheDReadMisses);
        return false;
    }

    uint32_t set = setIndex(pa);
    uint32_t tag = tagOf(pa);
    if (lookup(set, tag) >= 0)
        return true;

    if (istream)
        ++stats_.iReadMisses;
    else
        ++stats_.dReadMisses;
    obs::count(istream ? obs::Ev::CacheIReadMisses
                       : obs::Ev::CacheDReadMisses);
    fill(set, tag);
    return false;
}

bool
Cache::writeAccess(PAddr pa)
{
    ++stats_.writes;
    obs::count(obs::Ev::CacheWrites);
    if (!config_.enabled)
        return false;
    uint32_t set = setIndex(pa);
    uint32_t tag = tagOf(pa);
    // No write-allocate: a write miss leaves the cache unchanged.
    if (lookup(set, tag) >= 0) {
        ++stats_.writeHits;
        obs::count(obs::Ev::CacheWriteHits);
        return true;
    }
    return false;
}

bool
Cache::probe(PAddr pa) const
{
    if (!config_.enabled)
        return false;
    return lookup(setIndex(pa), tagOf(pa)) >= 0;
}

void
Cache::invalidateAll()
{
    for (Line &l : lines_)
        l.valid = false;
    ++stats_.invalidates;
}

void
Cache::serialize(ByteWriter &w) const
{
    w.u32(static_cast<uint32_t>(lines_.size()));
    for (const Line &l : lines_) {
        w.b(l.valid);
        w.u32(l.tag);
    }
    w.u64(stats_.dReads.value());
    w.u64(stats_.dReadMisses.value());
    w.u64(stats_.iReads.value());
    w.u64(stats_.iReadMisses.value());
    w.u64(stats_.writes.value());
    w.u64(stats_.writeHits.value());
    w.u64(stats_.invalidates.value());
    for (uint64_t s : rng_.state())
        w.u64(s);
}

void
Cache::deserialize(ByteReader &r)
{
    const uint32_t n = r.u32();
    if (n != lines_.size())
        sim_throw(SnapshotError,
                  "snapshot cache has %u lines but the machine has %zu",
                  n, lines_.size());
    for (Line &l : lines_) {
        l.valid = r.b();
        l.tag = r.u32();
    }
    stats_.dReads.set(r.u64());
    stats_.dReadMisses.set(r.u64());
    stats_.iReads.set(r.u64());
    stats_.iReadMisses.set(r.u64());
    stats_.writes.set(r.u64());
    stats_.writeHits.set(r.u64());
    stats_.invalidates.set(r.u64());
    std::array<uint64_t, 4> s;
    for (uint64_t &v : s)
        v = r.u64();
    rng_.setState(s);
}

} // namespace upc780::mem
