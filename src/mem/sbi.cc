#include "mem/sbi.hh"

#include "common/serial.hh"
#include "fault/fault.hh"

namespace upc780::mem
{

uint64_t
Sbi::start(uint64_t now, uint32_t latency)
{
    if (fault_) {
        // A timed-out transaction holds the path for the timeout
        // period before the (always successful) hardware retry.
        uint32_t penalty = fault_->onSbiTransaction();
        if (penalty > 0) {
            latency += penalty;
            ++stats_.timeouts;
        }
    }
    uint64_t begin = now;
    if (busyUntil_ > now) {
        stats_.contentionCycles += busyUntil_ - now;
        begin = busyUntil_;
    }
    busyUntil_ = begin + latency;
    return busyUntil_;
}

uint64_t
Sbi::startRead(uint64_t now)
{
    ++stats_.readTransactions;
    return start(now, config_.readLatency);
}

uint64_t
Sbi::startWrite(uint64_t now)
{
    ++stats_.writeTransactions;
    return start(now, config_.writeLatency);
}

void
Sbi::serialize(ByteWriter &w) const
{
    w.u64(busyUntil_);
    w.u64(stats_.readTransactions.value());
    w.u64(stats_.writeTransactions.value());
    w.u64(stats_.contentionCycles.value());
    w.u64(stats_.timeouts.value());
}

void
Sbi::deserialize(ByteReader &r)
{
    busyUntil_ = r.u64();
    stats_.readTransactions.set(r.u64());
    stats_.writeTransactions.set(r.u64());
    stats_.contentionCycles.set(r.u64());
    stats_.timeouts.set(r.u64());
}

} // namespace upc780::mem
