/**
 * @file
 * Synchronous Backplane Interconnect (SBI) occupancy model. The SBI
 * carries cache-miss fills, write-through traffic, and IB refill
 * misses to memory. A transaction holds the path for a fixed number
 * of cycles; a requester arriving while the path is busy waits.
 */

#ifndef UPC780_MEM_SBI_HH
#define UPC780_MEM_SBI_HH

#include <cstdint>

#include "common/stats.hh"

namespace upc780::fault
{
class FaultInjector;
}

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mem
{

/** SBI timing parameters (in 200 ns EBOX cycles). */
struct SbiConfig
{
    /** Cycles from read request to data return (paper: 6). */
    uint32_t readLatency = 6;
    /** Cycles a memory write occupies the path (paper: 6). */
    uint32_t writeLatency = 6;

    bool operator==(const SbiConfig &) const = default;
};

/** Counters for SBI activity. */
struct SbiStats
{
    upc780::Counter readTransactions;
    upc780::Counter writeTransactions;
    upc780::Counter contentionCycles;  //!< cycles spent queued
    upc780::Counter timeouts;          //!< injected no-response faults
};

/** Single-path bus occupancy tracker. */
class Sbi
{
  public:
    explicit Sbi(const SbiConfig &config = SbiConfig{})
        : config_(config)
    {}

    /**
     * Start a read transaction at cycle @p now.
     * @retval cycle at which the data is available.
     */
    uint64_t startRead(uint64_t now);

    /**
     * Start a write transaction at cycle @p now.
     * @retval cycle at which the path (and the write buffer entry)
     *         frees.
     */
    uint64_t startWrite(uint64_t now);

    /** Cycle until which the path is occupied. */
    uint64_t busyUntil() const { return busyUntil_; }

    /**
     * Attach a fault injector: transactions may then time out and
     * occupy the path for the configured penalty while the retry
     * completes. Null (the default) disables injection.
     */
    void setFaultInjector(fault::FaultInjector *inj) { fault_ = inj; }

    const SbiConfig &config() const { return config_; }
    const SbiStats &stats() const { return stats_; }

    /** Checkpoint occupancy + counters. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    uint64_t start(uint64_t now, uint32_t latency);

    SbiConfig config_;
    uint64_t busyUntil_ = 0;
    SbiStats stats_;
    fault::FaultInjector *fault_ = nullptr;
};

} // namespace upc780::mem

#endif // UPC780_MEM_SBI_HH
