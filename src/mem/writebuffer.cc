#include "mem/writebuffer.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "mem/sbi.hh"
#include "obs/counters.hh"

namespace upc780::mem
{

WriteBuffer::WriteBuffer(Sbi &sbi, uint32_t depth)
    : sbi_(sbi), depth_(depth)
{
    if (depth_ == 0)
        sim_throw(ConfigError, "write buffer depth must be at least 1");
    inflight_.assign(depth_, 0);
}

uint64_t
WriteBuffer::issue(uint64_t now)
{
    ++stats_.writes;
    obs::count(obs::Ev::WbWrites);

    // The buffer entry that frees earliest.
    auto slot = std::min_element(inflight_.begin(), inflight_.end());
    uint64_t stall = 0;
    if (*slot > now) {
        stall = *slot - now;
        ++stats_.stalls;
        stats_.stallCycles += stall;
        obs::count(obs::Ev::WbStallCycles, stall);
    }
    uint64_t accepted = now + stall;
    *slot = sbi_.startWrite(accepted);
    return stall;
}

uint64_t
WriteBuffer::drainedAt() const
{
    return *std::max_element(inflight_.begin(), inflight_.end());
}

void
WriteBuffer::serialize(ByteWriter &w) const
{
    w.u32(static_cast<uint32_t>(inflight_.size()));
    for (uint64_t t : inflight_)
        w.u64(t);
    w.u64(stats_.writes.value());
    w.u64(stats_.stalls.value());
    w.u64(stats_.stallCycles.value());
}

void
WriteBuffer::deserialize(ByteReader &r)
{
    const uint32_t n = r.u32();
    if (n != inflight_.size())
        sim_throw(SnapshotError,
                  "snapshot write buffer depth %u does not match the "
                  "machine's %zu", n, inflight_.size());
    for (uint64_t &t : inflight_)
        t = r.u64();
    stats_.writes.set(r.u64());
    stats_.stalls.set(r.u64());
    stats_.stallCycles.set(r.u64());
}

} // namespace upc780::mem
