#include "mem/memory.hh"

#include <cstring>

#include "common/error.hh"
#include "common/logging.hh"
#include "fault/fault.hh"

namespace upc780::mem
{

PhysicalMemory::PhysicalMemory(uint32_t size_bytes)
    : data_(size_bytes, 0)
{
    if (size_bytes == 0)
        sim_throw(ConfigError, "physical memory size must be nonzero");
}

void
PhysicalMemory::fillCheck(PAddr pa)
{
    check(pa, 4);
    if (fault_)
        fault_->onMemoryFill(pa);
}

void
PhysicalMemory::check(PAddr pa, uint32_t n) const
{
    if (pa + n > data_.size() || pa + n < pa)
        panic("physical access 0x%08x size %u beyond memory (%zu bytes)",
              pa, n, data_.size());
}

uint8_t
PhysicalMemory::readByte(PAddr pa) const
{
    check(pa, 1);
    return data_[pa];
}

void
PhysicalMemory::writeByte(PAddr pa, uint8_t v)
{
    check(pa, 1);
    data_[pa] = v;
}

uint64_t
PhysicalMemory::read(PAddr pa, uint32_t n) const
{
    check(pa, n);
    uint64_t v = 0;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(data_[pa + i]) << (8 * i);
    return v;
}

void
PhysicalMemory::write(PAddr pa, uint32_t n, uint64_t v)
{
    check(pa, n);
    for (uint32_t i = 0; i < n; ++i)
        data_[pa + i] = static_cast<uint8_t>(v >> (8 * i));
}

void
PhysicalMemory::load(PAddr pa, const uint8_t *src, uint32_t n)
{
    check(pa, n);
    std::memcpy(data_.data() + pa, src, n);
}

void
PhysicalMemory::clear(PAddr pa, uint32_t n)
{
    check(pa, n);
    std::memset(data_.data() + pa, 0, n);
}

} // namespace upc780::mem
