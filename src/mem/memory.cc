#include "mem/memory.hh"

#include <cstring>

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "fault/fault.hh"

namespace upc780::mem
{

PhysicalMemory::PhysicalMemory(uint32_t size_bytes)
    : data_(size_bytes, 0)
{
    if (size_bytes == 0)
        sim_throw(ConfigError, "physical memory size must be nonzero");
}

void
PhysicalMemory::fillCheck(PAddr pa)
{
    check(pa, 4);
    if (fault_)
        fault_->onMemoryFill(pa);
}

void
PhysicalMemory::check(PAddr pa, uint32_t n) const
{
    if (pa + n > data_.size() || pa + n < pa)
        panic("physical access 0x%08x size %u beyond memory (%zu bytes)",
              pa, n, data_.size());
}

uint8_t
PhysicalMemory::readByte(PAddr pa) const
{
    check(pa, 1);
    return data_[pa];
}

void
PhysicalMemory::writeByte(PAddr pa, uint8_t v)
{
    check(pa, 1);
    data_[pa] = v;
}

uint64_t
PhysicalMemory::read(PAddr pa, uint32_t n) const
{
    check(pa, n);
    uint64_t v = 0;
    for (uint32_t i = 0; i < n; ++i)
        v |= static_cast<uint64_t>(data_[pa + i]) << (8 * i);
    return v;
}

void
PhysicalMemory::write(PAddr pa, uint32_t n, uint64_t v)
{
    check(pa, n);
    for (uint32_t i = 0; i < n; ++i)
        data_[pa + i] = static_cast<uint8_t>(v >> (8 * i));
}

void
PhysicalMemory::load(PAddr pa, const uint8_t *src, uint32_t n)
{
    check(pa, n);
    std::memcpy(data_.data() + pa, src, n);
}

void
PhysicalMemory::clear(PAddr pa, uint32_t n)
{
    check(pa, n);
    std::memset(data_.data() + pa, 0, n);
}

namespace
{
/** Snapshot chunk granularity for the zero-page elision. */
constexpr uint32_t SnapPage = 4096;
} // namespace

void
PhysicalMemory::serialize(ByteWriter &w) const
{
    w.u32(static_cast<uint32_t>(data_.size()));
    const uint32_t pages =
        (static_cast<uint32_t>(data_.size()) + SnapPage - 1) / SnapPage;
    // First pass: count non-zero pages so the reader knows the count
    // up front.
    uint32_t nonzero = 0;
    for (uint32_t p = 0; p < pages; ++p) {
        const uint32_t off = p * SnapPage;
        const uint32_t len = std::min<uint32_t>(
            SnapPage, static_cast<uint32_t>(data_.size()) - off);
        bool all_zero = true;
        for (uint32_t i = 0; i < len && all_zero; ++i)
            all_zero = data_[off + i] == 0;
        if (!all_zero)
            ++nonzero;
    }
    w.u32(nonzero);
    for (uint32_t p = 0; p < pages; ++p) {
        const uint32_t off = p * SnapPage;
        const uint32_t len = std::min<uint32_t>(
            SnapPage, static_cast<uint32_t>(data_.size()) - off);
        bool all_zero = true;
        for (uint32_t i = 0; i < len && all_zero; ++i)
            all_zero = data_[off + i] == 0;
        if (all_zero)
            continue;
        w.u32(p);
        w.bytes(data_.data() + off, len);
    }
}

void
PhysicalMemory::deserialize(ByteReader &r)
{
    const uint32_t size = r.u32();
    if (size != data_.size())
        sim_throw(SnapshotError,
                  "snapshot memory image is %u bytes but the machine "
                  "has %zu", size, data_.size());
    std::fill(data_.begin(), data_.end(), 0);
    const uint32_t pages = (size + SnapPage - 1) / SnapPage;
    const uint32_t nonzero = r.u32();
    if (nonzero > pages)
        sim_throw(SnapshotError,
                  "snapshot memory image claims %u non-zero pages of %u",
                  nonzero, pages);
    for (uint32_t i = 0; i < nonzero; ++i) {
        const uint32_t p = r.u32();
        if (p >= pages)
            sim_throw(SnapshotError,
                      "snapshot memory page index %u out of range", p);
        const uint32_t off = p * SnapPage;
        const uint32_t len = std::min<uint32_t>(SnapPage, size - off);
        r.bytes(data_.data() + off, len);
    }
}

} // namespace upc780::mem
