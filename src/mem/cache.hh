/**
 * @file
 * The VAX-11/780 data/instruction cache: 8 KB, two-way set associative,
 * 8-byte blocks, write-through with no write-allocate, random
 * replacement. Because the cache is write-through, physical memory is
 * always current and the model needs only a tag store.
 *
 * The cache is a *hardware* component invisible to microcode; its
 * counters model the separate cache-study monitor of Clark [2], which
 * the paper cites for the numbers the UPC technique cannot see.
 */

#ifndef UPC780_MEM_CACHE_HH
#define UPC780_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mem
{

using arch::PAddr;

/** Cache geometry; defaults are the 11/780's. */
struct CacheConfig
{
    uint32_t sizeBytes = 8 * 1024;
    uint32_t ways = 2;
    uint32_t blockBytes = 8;
    bool enabled = true;   //!< ablation: force every access to miss

    bool operator==(const CacheConfig &) const = default;
};

/** Hardware-monitor counters on the cache (cf. Clark's cache study). */
struct CacheStats
{
    upc780::Counter dReads;        //!< D-stream read accesses
    upc780::Counter dReadMisses;
    upc780::Counter iReads;        //!< I-stream (IB) read accesses
    upc780::Counter iReadMisses;
    upc780::Counter writes;        //!< write probes (write-through)
    upc780::Counter writeHits;     //!< writes that updated a block
    upc780::Counter invalidates;   //!< full flushes

    uint64_t readMisses() const
    {
        return dReadMisses.value() + iReadMisses.value();
    }
};

/** Tag-store model of the 780 cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config = CacheConfig{},
                   uint64_t seed = 0xCAC4E);

    /**
     * Probe for a read. On a miss the block is allocated (read
     * allocate).
     *
     * @param pa physical address of the access
     * @param istream true for IB refill references
     * @retval true on hit
     */
    bool readAccess(PAddr pa, bool istream);

    /**
     * Probe for a write. Write-through: the block is updated only on
     * hit and never allocated (the data itself lives in memory).
     *
     * @retval true on hit
     */
    bool writeAccess(PAddr pa);

    /** Probe without side effects (for tests). */
    bool probe(PAddr pa) const;

    /** Invalidate the whole cache. */
    void invalidateAll();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    CacheStats &stats() { return stats_; }

    uint32_t numSets() const { return numSets_; }

    /** Checkpoint tag store + counters + replacement RNG. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
    };

    uint32_t setIndex(PAddr pa) const;
    uint32_t tagOf(PAddr pa) const;
    /** Find way of a matching valid line, or -1. */
    int lookup(uint32_t set, uint32_t tag) const;
    void fill(uint32_t set, uint32_t tag);

    CacheConfig config_;
    uint32_t numSets_;
    uint32_t blockShift_;
    std::vector<Line> lines_;  //!< [set * ways + way]
    CacheStats stats_;
    upc780::Rng rng_;
};

} // namespace upc780::mem

#endif // UPC780_MEM_CACHE_HH
