/**
 * @file
 * Composed memory subsystem of the VAX-11/780: cache + write buffer +
 * SBI + physical memory, exposing the operations and timing rules the
 * CPU pipeline depends on (paper §2.1):
 *
 *  - a read that hits TB and cache consumes one cycle (no stall);
 *  - a read miss stalls the EBOX ~6 cycles (more under contention);
 *  - a write takes one cycle to initiate; a write issued while the
 *    previous one is still draining incurs a write stall;
 *  - write misses do not update the cache (write-through, no
 *    allocate);
 *  - IB refill reads do not stall the EBOX directly.
 *
 * Address translation lives in mmu/; this layer takes physical
 * addresses.
 */

#ifndef UPC780_MEM_MEMSYS_HH
#define UPC780_MEM_MEMSYS_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "mem/sbi.hh"
#include "mem/writebuffer.hh"

namespace upc780::fault
{
class FaultInjector;
}

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mem
{

/** Outcome of a data-stream access. */
struct MemResult
{
    uint64_t data = 0;        //!< read data (reads only)
    /**
     * Read or write stall incurred. 64-bit like every other counter on
     * the counting path: stalls accumulate into histogram stall
     * buckets, and a multi-billion-cycle run must not wrap anywhere
     * along the chain.
     */
    uint64_t stallCycles = 0;
    bool miss = false;        //!< any cache miss among the references
    bool unaligned = false;   //!< access crossed a longword boundary
};

/** Aggregate configuration for the memory side of the machine. */
struct MemSysConfig
{
    CacheConfig cache;
    SbiConfig sbi;
    uint32_t writeBufferDepth = 1;
    uint32_t memSize = PhysicalMemory::DefaultSize;

    bool operator==(const MemSysConfig &) const = default;
};

/** The composed hierarchy. */
class MemorySubsystem
{
  public:
    explicit MemorySubsystem(const MemSysConfig &config = MemSysConfig{});

    /**
     * D-stream read of @p size bytes (1..8) at physical address
     * @p pa, issued at cycle @p now. Accesses that span longword
     * boundaries make two cache references and are flagged unaligned.
     */
    MemResult read(PAddr pa, uint32_t size, uint64_t now);

    /**
     * D-stream write of @p size bytes at @p pa, issued at cycle
     * @p now. Returns the write-stall cycles incurred.
     */
    MemResult write(PAddr pa, uint32_t size, uint64_t data, uint64_t now);

    /**
     * I-stream refill read of the aligned longword containing @p pa.
     * Does not stall the EBOX.
     *
     * @param data_ready_at out: cycle at which the longword arrives
     * @retval the longword
     */
    uint32_t ifetch(PAddr pa, uint64_t now, uint64_t &data_ready_at);

    /** Invalidate the cache (power-up or diagnostic). */
    void flushCache() { cache_.invalidateAll(); }

    /**
     * Attach a fault injector to the memory side (main-memory ECC on
     * miss fills, SBI timeouts). Null disables injection.
     */
    void setFaultInjector(fault::FaultInjector *inj);

    /** Unaligned D-stream references observed (paper §3.3.1). */
    uint64_t unalignedRefs() const { return unaligned_.value(); }

    /** Checkpoint the full hierarchy (memory, cache, SBI, buffer). */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

    PhysicalMemory &memory() { return memory_; }
    const PhysicalMemory &memory() const { return memory_; }
    Cache &cache() { return cache_; }
    const Cache &cache() const { return cache_; }
    const Sbi &sbi() const { return sbi_; }
    const WriteBuffer &writeBuffer() const { return writeBuffer_; }

  private:
    /** One aligned cache reference; returns stall cycles. */
    uint64_t readRef(PAddr pa, uint64_t now, bool istream, bool &miss);

    PhysicalMemory memory_;
    Cache cache_;
    Sbi sbi_;
    WriteBuffer writeBuffer_;
    upc780::Counter unaligned_;
};

} // namespace upc780::mem

#endif // UPC780_MEM_MEMSYS_HH
