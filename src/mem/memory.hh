/**
 * @file
 * Flat physical memory. The measured machines had 8 Megabytes; the
 * model defaults to the same.
 */

#ifndef UPC780_MEM_MEMORY_HH
#define UPC780_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"

namespace upc780::mem
{

using arch::PAddr;

/** Byte-addressable physical memory array. */
class PhysicalMemory
{
  public:
    static constexpr uint32_t DefaultSize = 8u * 1024 * 1024;

    explicit PhysicalMemory(uint32_t size_bytes = DefaultSize);

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

    uint8_t readByte(PAddr pa) const;
    void writeByte(PAddr pa, uint8_t v);

    /** Little-endian read of @p n bytes (1..8), any alignment. */
    uint64_t read(PAddr pa, uint32_t n) const;

    /** Little-endian write of @p n bytes (1..8), any alignment. */
    void write(PAddr pa, uint32_t n, uint64_t v);

    /** Copy a block into memory (workload image loading). */
    void load(PAddr pa, const uint8_t *src, uint32_t n);

    /** Zero a block. */
    void clear(PAddr pa, uint32_t n);

  private:
    void check(PAddr pa, uint32_t n) const;

    std::vector<uint8_t> data_;
};

} // namespace upc780::mem

#endif // UPC780_MEM_MEMORY_HH
