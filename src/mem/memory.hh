/**
 * @file
 * Flat physical memory. The measured machines had 8 Megabytes; the
 * model defaults to the same.
 */

#ifndef UPC780_MEM_MEMORY_HH
#define UPC780_MEM_MEMORY_HH

#include <cstdint>
#include <vector>

#include "arch/types.hh"

namespace upc780::fault
{
class FaultInjector;
}

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mem
{

using arch::PAddr;

/** Byte-addressable physical memory array. */
class PhysicalMemory
{
  public:
    static constexpr uint32_t DefaultSize = 8u * 1024 * 1024;

    explicit PhysicalMemory(uint32_t size_bytes = DefaultSize);

    uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

    uint8_t readByte(PAddr pa) const;
    void writeByte(PAddr pa, uint8_t v);

    /** Little-endian read of @p n bytes (1..8), any alignment. */
    uint64_t read(PAddr pa, uint32_t n) const;

    /** Little-endian write of @p n bytes (1..8), any alignment. */
    void write(PAddr pa, uint32_t n, uint64_t v);

    /** Copy a block into memory (workload image loading). */
    void load(PAddr pa, const uint8_t *src, uint32_t n);

    /** Zero a block. */
    void clear(PAddr pa, uint32_t n);

    /**
     * Attach a fault injector: timed miss fills pass through the ECC
     * model (fillCheck). Null (the default) disables injection.
     */
    void setFaultInjector(fault::FaultInjector *inj) { fault_ = inj; }

    /**
     * ECC check on the main-memory fetch of the fill longword at
     * @p pa. Called only on the timed cache-miss path; backdoor and
     * image-loading accesses never see faults. A single-bit error is
     * corrected in flight (the returned data is always good), a
     * double-bit error is flagged uncorrectable — either way the
     * injector queues a machine check for the CPU to take.
     */
    void fillCheck(PAddr pa);

    /**
     * Checkpoint the memory image. All-zero 4 KB pages are elided, so
     * a snapshot of a lightly touched 8 MB image stays small while the
     * restored bytes are identical.
     */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    void check(PAddr pa, uint32_t n) const;

    std::vector<uint8_t> data_;
    fault::FaultInjector *fault_ = nullptr;
};

} // namespace upc780::mem

#endif // UPC780_MEM_MEMORY_HH
