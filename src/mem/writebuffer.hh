/**
 * @file
 * The 11/780's single-longword write buffer. A data write takes one
 * EBOX cycle to initiate; the buffered write then drains to memory
 * over the SBI. A subsequent write issued before the previous one has
 * drained incurs a *write stall* (paper §2.1): the EBOX suspends until
 * the buffer frees.
 */

#ifndef UPC780_MEM_WRITEBUFFER_HH
#define UPC780_MEM_WRITEBUFFER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace upc780
{
class ByteWriter;
class ByteReader;
}

namespace upc780::mem
{

class Sbi;

/** Write buffer counters. */
struct WriteBufferStats
{
    upc780::Counter writes;
    upc780::Counter stalls;        //!< writes that had to wait
    upc780::Counter stallCycles;   //!< total cycles waited
};

/** Depth-configurable write buffer (depth 1 models the 780). */
class WriteBuffer
{
  public:
    explicit WriteBuffer(Sbi &sbi, uint32_t depth = 1);

    /**
     * Issue a write at cycle @p now.
     * @retval number of stall cycles incurred before the write could
     *         be accepted. 64-bit: stall cycles flow into 64-bit
     *         histogram counters and must not wrap on the way there.
     */
    uint64_t issue(uint64_t now);

    /** Cycle at which all buffered writes have drained. */
    uint64_t drainedAt() const;

    const WriteBufferStats &stats() const { return stats_; }

    /** Checkpoint in-flight drain times + counters. */
    void serialize(ByteWriter &w) const;
    void deserialize(ByteReader &r);

  private:
    Sbi &sbi_;
    uint32_t depth_;
    /** Completion cycles of in-flight writes (ring, size = depth). */
    std::vector<uint64_t> inflight_;
    WriteBufferStats stats_;
};

} // namespace upc780::mem

#endif // UPC780_MEM_WRITEBUFFER_HH
