#include "mem/memsys.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "obs/counters.hh"

namespace upc780::mem
{

MemorySubsystem::MemorySubsystem(const MemSysConfig &config)
    : memory_(config.memSize),
      cache_(config.cache),
      sbi_(config.sbi),
      writeBuffer_(sbi_, config.writeBufferDepth)
{
}

void
MemorySubsystem::setFaultInjector(fault::FaultInjector *inj)
{
    memory_.setFaultInjector(inj);
    sbi_.setFaultInjector(inj);
}

uint64_t
MemorySubsystem::readRef(PAddr pa, uint64_t now, bool istream, bool &miss)
{
    if (cache_.readAccess(pa, istream)) {
        return 0;
    }
    miss = true;
    uint64_t ready = sbi_.startRead(now);
    // The fill longword crosses the ECC-checked main-memory array.
    memory_.fillCheck(alignDown(pa, 4));
    return ready - now;
}

MemResult
MemorySubsystem::read(PAddr pa, uint32_t size, uint64_t now)
{
    if (size == 0 || size > 8)
        panic("read size %u", size);

    MemResult r;
    // The 780 data path moves aligned longwords; a scalar that spans
    // a longword boundary needs two physical references (paper §3.3.1).
    PAddr first = alignDown(pa, 4);
    PAddr last = alignDown(pa + size - 1, 4);

    r.stallCycles += readRef(first, now, false, r.miss);
    if (last != first) {
        // Quadword operands make a second reference without being
        // "unaligned"; only a boundary-crossing scalar (< 8 bytes,
        // not 4-byte aligned) is.
        if (size <= 4 || (pa & 3) != 0)
            r.unaligned = (pa & 3) != 0 && alignDown(pa, 4) + 4 < pa + size;
        r.stallCycles += readRef(last, now + r.stallCycles, false, r.miss);
        if (size == 8 && last - first > 4) {
            // 8-byte unaligned spans three longwords.
            r.stallCycles += readRef(first + 4, now + r.stallCycles,
                                     false, r.miss);
        }
    }
    if (r.unaligned) {
        ++unaligned_;
        obs::count(obs::Ev::MemUnalignedRefs);
    }
    r.data = memory_.read(pa, size);
    return r;
}

MemResult
MemorySubsystem::write(PAddr pa, uint32_t size, uint64_t data,
                       uint64_t now)
{
    if (size == 0 || size > 8)
        panic("write size %u", size);

    MemResult r;
    PAddr first = alignDown(pa, 4);
    PAddr last = alignDown(pa + size - 1, 4);
    uint32_t refs = 1 + (last != first ? 1 : 0) +
                    (size == 8 && last - first > 4 ? 1 : 0);
    r.unaligned = (pa & 3) != 0 && (last != first) && size <= 4;

    // Each longword of the write occupies a write-buffer entry.
    uint64_t at = now;
    for (uint32_t i = 0; i < refs; ++i) {
        uint64_t stall = writeBuffer_.issue(at);
        r.stallCycles += stall;
        at += stall + 1;
        // Write-through probe: update-on-hit, never allocate.
        cache_.writeAccess(first + 4 * i);
    }

    if (r.unaligned) {
        ++unaligned_;
        obs::count(obs::Ev::MemUnalignedRefs);
    }
    memory_.write(pa, size, data);
    return r;
}

void
MemorySubsystem::serialize(ByteWriter &w) const
{
    memory_.serialize(w);
    cache_.serialize(w);
    sbi_.serialize(w);
    writeBuffer_.serialize(w);
    w.u64(unaligned_.value());
}

void
MemorySubsystem::deserialize(ByteReader &r)
{
    memory_.deserialize(r);
    cache_.deserialize(r);
    sbi_.deserialize(r);
    writeBuffer_.deserialize(r);
    unaligned_.set(r.u64());
}

uint32_t
MemorySubsystem::ifetch(PAddr pa, uint64_t now, uint64_t &data_ready_at)
{
    PAddr lw = alignDown(pa, 4);
    bool miss = false;
    uint64_t delay = readRef(lw, now, true, miss);
    data_ready_at = now + delay;
    return static_cast<uint32_t>(memory_.read(lw, 4));
}

} // namespace upc780::mem
